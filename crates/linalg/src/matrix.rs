//! Row-major dense matrix.
//!
//! The DP model is dominated by "tall and skinny" matrices (§5.3): the row
//! count is `n_atoms × n_neighbors` (hundreds of thousands) while columns are
//! network widths (25–240). Row-major storage keeps each row contiguous so
//! per-neighbor rows stream linearly through the cache, which is the same
//! reason the paper's layout puts the long axis outermost on the GPU.

use crate::real::Real;

/// Dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// (rows, cols) pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Contiguous row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable contiguous row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reinterpret as a different shape with the same element count.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(self.data.len(), rows * cols, "reshape element mismatch");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        // Block the loops so both source and destination stay cache-resident.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Re-shape in place for arena reuse (§5.2.2): the backing vector grows
    /// only when the new element count exceeds its capacity, so a workspace
    /// matrix sized once at startup never re-allocates in steady state.
    /// Existing element values are unspecified afterwards — callers are
    /// expected to overwrite every element (as all `_into` kernels do).
    pub fn reuse_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, T::ZERO);
    }

    /// Copy another matrix's shape and contents into this one, reusing the
    /// existing allocation when capacity suffices.
    pub fn copy_from(&mut self, other: &Self) {
        self.reuse_shape(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// In-place elementwise (Hadamard) product: `self *= other`.
    pub fn hadamard_assign(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// `self += alpha * other` (elementwise AXPY).
    pub fn axpy(&mut self, alpha: T, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = b.mul_add(alpha, *a);
        }
    }

    /// Scale every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Elementwise sum of all entries.
    pub fn sum(&self) -> T {
        self.data.iter().copied().sum()
    }

    /// Elementwise (Hadamard) product into a new matrix.
    pub fn hadamard(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> T {
        self.data
            .iter()
            .map(|&x| x * x)
            .fold(T::ZERO, |acc, x| acc + x)
            .sqrt()
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(T::ZERO, |acc, x| acc.max(x))
    }

    /// Convert elementwise to another precision.
    pub fn cast<U: Real>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// Horizontal concatenation `[self | other]` (the CONCAT operator the
    /// paper replaces; kept as the baseline for the §5.3.2 ablation).
    pub fn hcat(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Self {
            rows: self.rows,
            cols,
            data,
        }
    }
}

impl<T: Real> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Real> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Real> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)].to_f64())?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i3 = Matrix::<f64>::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(i3[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(37, 53, |i, j| (i * 53 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (53, 37));
        assert_eq!(t[(5, 30)], m[(30, 5)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0_f64);
        let b = Matrix::full(2, 2, 2.0_f64);
        a.axpy(0.5, &b);
        assert_eq!(a[(0, 0)], 2.0);
        a.scale(2.0);
        assert_eq!(a[(1, 1)], 4.0);
    }

    #[test]
    fn hcat_layout() {
        let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let b = Matrix::full(2, 1, 9.0_f64);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[0.0, 1.0, 9.0]);
        assert_eq!(c.row(1), &[2.0, 3.0, 9.0]);
    }

    #[test]
    fn cast_f64_to_f32_and_back() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f64 + 0.125);
        let s: Matrix<f32> = m.cast();
        let back: Matrix<f64> = s.cast();
        // 0.125 offsets are exactly representable in f32.
        assert_eq!(back, m);
    }

    #[test]
    fn norm_and_diff() {
        let a = Matrix::from_vec(1, 2, vec![3.0_f64, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = Matrix::from_vec(1, 2, vec![3.0_f64, 4.5]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reshape_preserves_data() {
        let m = Matrix::from_fn(2, 6, |i, j| (i * 6 + j) as f64);
        let r = m.clone().reshape(3, 4);
        assert_eq!(r.as_slice(), m.as_slice());
        assert_eq!(r.shape(), (3, 4));
    }

    #[test]
    #[should_panic(expected = "reshape element mismatch")]
    fn reshape_wrong_size_panics() {
        let _ = Matrix::<f64>::zeros(2, 2).reshape(3, 2);
    }

    #[test]
    fn reuse_shape_keeps_capacity() {
        let mut m = Matrix::<f64>::zeros(8, 8);
        let cap_ptr = m.as_slice().as_ptr();
        m.reuse_shape(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.len(), 16);
        m.reuse_shape(8, 8);
        assert_eq!(m.shape(), (8, 8));
        // Shrinking then growing back must not re-allocate.
        assert_eq!(m.as_slice().as_ptr(), cap_ptr);
    }

    #[test]
    fn copy_from_and_hadamard_assign() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let mut b = Matrix::<f64>::zeros(1, 1);
        b.copy_from(&a);
        assert_eq!(b, a);
        let mut c = Matrix::full(3, 2, 2.0_f64);
        c.hadamard_assign(&a);
        assert_eq!(c, a.map(|x| 2.0 * x));
    }
}
