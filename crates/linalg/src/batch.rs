//! Strided batched GEMM over flat buffers (the cuBLAS
//! `gemmStridedBatched` analogue).
//!
//! §5.2.1's fixed-shape padded neighbor layout means every atom of a
//! given type contributes descriptor GEMMs of *identical* shape. Instead
//! of looping per atom with per-matrix dispatch overhead, `deepmd-core`
//! hands the whole chunk to one of these kernels: `batch` problems of
//! shape `m×k×n` laid out back-to-back in flat slices at fixed strides.
//! No operand is ever materialized in transposed form — the `tn`/`nt`
//! variants read `A` with a column stride or reduce along rows directly,
//! which keeps the §5.2.2 zero-allocation contract intact.
//!
//! FLOPs are charged once per call (`batch · 2mnk`, plus `batch · mn`
//! when accumulating), matching the per-call accounting in
//! [`crate::gemm`].

use crate::flops;
use crate::real::Real;
use crate::simd;
use rayon::prelude::*;

/// Whether a batched GEMM overwrites `C` or accumulates into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acc {
    /// `C = alpha · A×B` (existing contents ignored).
    Overwrite,
    /// `C += alpha · A×B`.
    Add,
}

/// Serial below this many total FLOPs — same rationale as the
/// `PAR_FLOP_THRESHOLD` in [`crate::gemm`].
const PAR_FLOP_THRESHOLD: u64 = 64 * 1024;

/// Operand layout for one batched problem, all in elements:
/// item `i` of `A` starts at `i * stride` and rows are `ld` apart.
#[derive(Debug, Clone, Copy)]
pub struct Panel {
    pub ld: usize,
    pub stride: usize,
}

fn charge(batch: usize, m: usize, n: usize, k: usize, acc: Acc) {
    flops::add(batch as u64 * flops::gemm_flops(m, n, k));
    if acc == Acc::Add {
        flops::add((batch * m * n) as u64);
    }
}

#[inline]
fn run_batch<T, F>(batch: usize, work: u64, c: &mut [T], stride_c: usize, item: F)
where
    T: Real,
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    if batch == 0 {
        return;
    }
    debug_assert!(c.len() >= batch * stride_c, "C buffer too short");
    if work < PAR_FLOP_THRESHOLD {
        for (i, c_i) in c[..batch * stride_c].chunks_exact_mut(stride_c).enumerate() {
            item(i, c_i);
        }
    } else {
        c[..batch * stride_c]
            .par_chunks_exact_mut(stride_c)
            .enumerate()
            .for_each(|(i, c_i)| item(i, c_i));
    }
}

/// Batched `C_i (+)= alpha · A_i × B_i` with `A_i` `(m×k)` and `B_i`
/// `(k×n)` row-major.
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_nn<T: Real>(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
    a: &[T],
    pa: Panel,
    b: &[T],
    pb: Panel,
    c: &mut [T],
    pc: Panel,
    acc: Acc,
) {
    charge(batch, m, n, k, acc);
    let work = batch as u64 * flops::gemm_flops(m, n, k);
    run_batch(batch, work, c, pc.stride, |i, c_i| {
        let a_i = &a[i * pa.stride..];
        let b_i = &b[i * pb.stride..];
        for row in 0..m {
            let c_row = &mut c_i[row * pc.ld..row * pc.ld + n];
            if acc == Acc::Overwrite {
                c_row.fill(T::ZERO);
            }
            simd::row_gemm(c_row, &a_i[row * pa.ld..row * pa.ld + k], b_i, pb.ld, alpha);
        }
    });
}

/// Batched `C_i (+)= alpha · A_iᵀ × B_i` with `A_i` stored `(k×m)`
/// row-major (so `Aᵀ` is `m×k`) and `B_i` `(k×n)`. `A` is read with a
/// column stride — no transpose is materialized.
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_tn<T: Real>(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
    a: &[T],
    pa: Panel,
    b: &[T],
    pb: Panel,
    c: &mut [T],
    pc: Panel,
    acc: Acc,
) {
    charge(batch, m, n, k, acc);
    let work = batch as u64 * flops::gemm_flops(m, n, k);
    run_batch(batch, work, c, pc.stride, |i, c_i| {
        let a_i = &a[i * pa.stride..];
        let b_i = &b[i * pb.stride..];
        for row in 0..m {
            let c_row = &mut c_i[row * pc.ld..row * pc.ld + n];
            if acc == Acc::Overwrite {
                c_row.fill(T::ZERO);
            }
            // Column `row` of A_i: elements a[p·ld + row], p = 0..k.
            simd::row_gemm_strided(c_row, k, &a_i[row..], pa.ld, b_i, pb.ld, alpha);
        }
    });
}

/// Batched `C_i (+)= alpha · A_i × B_iᵀ` with `A_i` `(m×k)` and `B_i`
/// stored `(n×k)` row-major (so `Bᵀ` is `k×n`). Row-against-row dot
/// products — both operands stream contiguously.
#[allow(clippy::too_many_arguments)]
pub fn gemm_batch_nt<T: Real>(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
    a: &[T],
    pa: Panel,
    b: &[T],
    pb: Panel,
    c: &mut [T],
    pc: Panel,
    acc: Acc,
) {
    charge(batch, m, n, k, acc);
    let work = batch as u64 * flops::gemm_flops(m, n, k);
    run_batch(batch, work, c, pc.stride, |i, c_i| {
        let a_i = &a[i * pa.stride..];
        let b_i = &b[i * pb.stride..];
        for row in 0..m {
            let a_row = &a_i[row * pa.ld..row * pa.ld + k];
            let c_row = &mut c_i[row * pc.ld..row * pc.ld + n];
            if acc == Acc::Overwrite && alpha == T::ONE {
                simd::dot_rows(c_row, a_row, b_i, pb.ld);
            } else {
                for (j, cj) in c_row.iter_mut().enumerate() {
                    let d = alpha * simd::dot(a_row, &b_i[j * pb.ld..j * pb.ld + k]);
                    *cj = match acc {
                        Acc::Overwrite => d,
                        Acc::Add => *cj + d,
                    };
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive_gemm;
    use crate::matrix::Matrix;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    fn tight(ld: usize, rows: usize) -> Panel {
        Panel {
            ld,
            stride: ld * rows,
        }
    }

    #[test]
    fn batch_nn_matches_naive_loop() {
        let (batch, m, k, n) = (5, 7, 4, 9);
        let a = rand_matrix(batch * m, k, 1);
        let b = rand_matrix(batch * k, n, 2);
        let mut c = vec![0.5; batch * m * n];
        gemm_batch_nn(
            batch,
            m,
            k,
            n,
            2.0,
            a.as_slice(),
            tight(k, m),
            b.as_slice(),
            tight(n, k),
            &mut c,
            tight(n, m),
            Acc::Overwrite,
        );
        for i in 0..batch {
            let ai = Matrix::from_fn(m, k, |r, cc| a[(i * m + r, cc)]);
            let bi = Matrix::from_fn(k, n, |r, cc| b[(i * k + r, cc)]);
            let want = naive_gemm(&ai, &bi);
            for r in 0..m {
                for j in 0..n {
                    let got = c[i * m * n + r * n + j];
                    assert!((got - 2.0 * want[(r, j)]).abs() < 1e-12, "item {i} ({r},{j})");
                }
            }
        }
    }

    #[test]
    fn batch_tn_matches_transposed_naive() {
        let (batch, m, k, n) = (3, 6, 8, 5);
        // A stored k x m per item.
        let a = rand_matrix(batch * k, m, 3);
        let b = rand_matrix(batch * k, n, 4);
        let mut c = vec![1.0; batch * m * n];
        gemm_batch_tn(
            batch,
            m,
            k,
            n,
            1.0,
            a.as_slice(),
            tight(m, k),
            b.as_slice(),
            tight(n, k),
            &mut c,
            tight(n, m),
            Acc::Add,
        );
        for i in 0..batch {
            let ai = Matrix::from_fn(k, m, |r, cc| a[(i * k + r, cc)]);
            let bi = Matrix::from_fn(k, n, |r, cc| b[(i * k + r, cc)]);
            let want = naive_gemm(&ai.transpose(), &bi);
            for r in 0..m {
                for j in 0..n {
                    let got = c[i * m * n + r * n + j];
                    assert!(
                        (got - (1.0 + want[(r, j)])).abs() < 1e-12,
                        "item {i} ({r},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_nt_matches_transposed_naive() {
        let (batch, m, k, n) = (4, 5, 11, 6);
        let a = rand_matrix(batch * m, k, 5);
        // B stored n x k per item.
        let b = rand_matrix(batch * n, k, 6);
        let mut c = vec![9.0; batch * m * n];
        gemm_batch_nt(
            batch,
            m,
            k,
            n,
            1.0,
            a.as_slice(),
            tight(k, m),
            b.as_slice(),
            tight(k, n),
            &mut c,
            tight(n, m),
            Acc::Overwrite,
        );
        for i in 0..batch {
            let ai = Matrix::from_fn(m, k, |r, cc| a[(i * m + r, cc)]);
            let bi = Matrix::from_fn(n, k, |r, cc| b[(i * n + r, cc)]);
            let want = naive_gemm(&ai, &bi.transpose());
            for r in 0..m {
                for j in 0..n {
                    let got = c[i * m * n + r * n + j];
                    assert!((got - want[(r, j)]).abs() < 1e-12, "item {i} ({r},{j})");
                }
            }
        }
    }

    #[test]
    fn wide_ld_reads_submatrix() {
        // B with ld wider than n: only the first n columns participate
        // (the eval path reads the m2-column prefix of the m_w-wide G).
        let (m, k, n, ldb) = (3, 4, 2, 7);
        let b_full = rand_matrix(k, ldb, 7);
        let a = rand_matrix(m, k, 8);
        let mut c = vec![0.0; m * n];
        gemm_batch_nn(
            1,
            m,
            k,
            n,
            1.0,
            a.as_slice(),
            tight(k, m),
            b_full.as_slice(),
            Panel { ld: ldb, stride: 0 },
            &mut c,
            tight(n, m),
            Acc::Overwrite,
        );
        let b_sub = Matrix::from_fn(k, n, |r, cc| b_full[(r, cc)]);
        let want = naive_gemm(&a, &b_sub);
        for r in 0..m {
            for j in 0..n {
                assert!((c[r * n + j] - want[(r, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_charging_counts_batch_once() {
        flops::reset();
        let (batch, m, k, n) = (3, 2, 4, 5);
        let a = vec![0.1; batch * m * k];
        let b = vec![0.2; batch * k * n];
        let mut c = vec![0.0; batch * m * n];
        gemm_batch_nn(
            batch,
            m,
            k,
            n,
            1.0,
            &a,
            tight(k, m),
            &b,
            tight(n, k),
            &mut c,
            tight(n, m),
            Acc::Overwrite,
        );
        assert_eq!(flops::reset(), (batch * 2 * m * n * k) as u64);
        gemm_batch_nn(
            batch,
            m,
            k,
            n,
            1.0,
            &a,
            tight(k, m),
            &b,
            tight(n, k),
            &mut c,
            tight(n, m),
            Acc::Add,
        );
        assert_eq!(flops::reset(), (batch * 2 * m * n * k + batch * m * n) as u64);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut c: Vec<f64> = vec![];
        gemm_batch_nn(
            0,
            3,
            3,
            3,
            1.0,
            &[],
            tight(3, 3),
            &[],
            tight(3, 3),
            &mut c,
            tight(3, 3),
            Acc::Overwrite,
        );
    }
}
