//! Dense linear-algebra kernels underlying the Deep Potential model.
//!
//! This crate is the CPU analogue of the cuBLAS + custom-CUDA-kernel layer in
//! the SC '20 GPU DeePMD-kit: a row-major [`Matrix`] type, a blocked and
//! rayon-parallel [`gemm`] kernels, the fused operators the paper
//! introduces in §5.3 (GEMM with fused bias, CONCAT-free skip connections,
//! fused `tanh`/`tanh`-gradient), and global FLOP accounting used by the
//! benchmark harnesses to report peak/sustained FLOPS the same way the paper
//! does with NVPROF.

pub mod batch;
pub mod flops;
pub mod fused;
pub mod gemm;
pub mod matrix;
pub mod real;
pub mod simd;

pub use flops::FlopCounter;
pub use matrix::Matrix;
pub use real::Real;
