//! Property-based tests for the linear-algebra kernels.

use dp_linalg::gemm::{gemm_bias, matmul, matmul_nt, matmul_tn, matmul_then_sum, naive_gemm};
use dp_linalg::fused::{concat_sum_baseline, dup_sum_fused, tanh_fused, tanh_then_grad_baseline};
use dp_linalg::Matrix;
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v))
    })
}

fn compatible_pair(max_dim: usize) -> impl Strategy<Value = (Matrix<f64>, Matrix<f64>)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-10.0..10.0f64, m * k).prop_map(move |v| Matrix::from_vec(m, k, v)),
            prop::collection::vec(-10.0..10.0f64, k * n).prop_map(move |v| Matrix::from_vec(k, n, v)),
        )
    })
}

proptest! {
    #[test]
    fn gemm_matches_naive((a, b) in compatible_pair(12)) {
        let fast = matmul(&a, &b);
        let slow = naive_gemm(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
    }

    #[test]
    fn transpose_is_involution(m in matrix_strategy(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gemm_transpose_identity((a, b) in compatible_pair(10)) {
        // (A x B)^T == B^T x A^T
        let left = matmul(&a, &b).transpose();
        let right = matmul(&b.transpose(), &a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn tn_nt_consistency((a, b) in compatible_pair(10)) {
        // matmul_tn(A^T stored as A) == matmul of explicit transpose
        let tn = matmul_tn(&a, &matmul(&a, &b));
        let explicit = matmul(&a.transpose(), &matmul(&a, &b));
        prop_assert!(tn.max_abs_diff(&explicit) < 1e-8);

        let nt = matmul_nt(&b, &b);
        let explicit = matmul(&b, &b.transpose());
        prop_assert!(nt.max_abs_diff(&explicit) < 1e-8);
    }

    #[test]
    fn fused_bias_equals_two_ops((a, b) in compatible_pair(10), bias_seed in 0u64..1000) {
        let bias: Vec<f64> = (0..b.cols()).map(|i| ((bias_seed + i as u64) % 17) as f64 * 0.3 - 2.0).collect();
        let fused = gemm_bias(&a, &b, &bias);
        let two = matmul_then_sum(&a, &b, &bias);
        prop_assert!(fused.max_abs_diff(&two) < 1e-10);
    }

    #[test]
    fn fused_tanh_equals_baseline(x in matrix_strategy(12)) {
        let (t0, g0) = tanh_then_grad_baseline(&x);
        let (t1, g1) = tanh_fused(&x);
        // 1e-13: the SIMD tanh (Cephes exp) is a few ULPs off std tanh —
        // the documented tolerance-gated deviation of the vector path.
        prop_assert!(t0.max_abs_diff(&t1) < 1e-13);
        prop_assert!(g0.max_abs_diff(&g1) < 1e-13);
    }

    #[test]
    fn skip_connection_fused_equals_concat(x in matrix_strategy(8)) {
        let h = Matrix::from_fn(x.rows(), 2 * x.cols(), |i, j| (i + j) as f64 * 0.25 - 1.0);
        let base = concat_sum_baseline(&x, &h);
        let fused = dup_sum_fused(&x, &h);
        prop_assert!(base.max_abs_diff(&fused) < 1e-14);
    }

    #[test]
    fn hcat_preserves_halves(x in matrix_strategy(8)) {
        let c = x.hcat(&x);
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                prop_assert_eq!(c[(i, j)], x[(i, j)]);
                prop_assert_eq!(c[(i, j + x.cols())], x[(i, j)]);
            }
        }
    }

    #[test]
    fn f16_truncation_monotone_pairs(a in -1e4..1e4f64, b in -1e4..1e4f64) {
        // Rounding to fp16 must preserve (weak) ordering.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(dp_linalg::real::truncate_to_f16(lo) <= dp_linalg::real::truncate_to_f16(hi));
    }
}
