//! Deep Potential: the paper's primary contribution, re-engineered in Rust.
//!
//! The crate implements the DeepPot-SE descriptor and its optimized
//! evaluation pipeline exactly along the lines of §5 of the paper:
//!
//! * [`codec`] — the 64-bit compressed neighbor encoding
//!   `type·10¹⁵ + ⌊r·10⁸⌋·10⁵ + j` (§5.2.2), plus a binary-split variant
//!   for systems larger than the decimal layout allows,
//! * `format` — the type-sorted, distance-sorted, padded neighbor layout
//!   that removes branching from the embedding computation (§5.2.1); the
//!   unsorted AoS baseline is kept for the Table 3 ablation,
//! * `env` — the Environment operator: smoothed environment matrices
//!   `R̃` and the geometric derivatives the force pass consumes,
//! * [`model`] — model parameters (embedding nets per neighbor type,
//!   fitting nets per center type) in any precision,
//! * [`eval`] — the optimized batched forward/backward: one tall GEMM per
//!   (neighbor-type, layer) instead of per-atom small kernels, fused
//!   bias/tanh/skip kernels, and the ProdForce / ProdVirial operators,
//! * [`baseline`] — the unoptimized per-atom reference implementation
//!   standing in for the 2018 serial DeePMD-kit (the paper's baseline),
//! * [`batch`] — cross-request concatenation of formatted tables: the
//!   serving scheduler's coalescing primitive (§5.2.1 applied across
//!   systems, bit-identical per-request results),
//! * [`potential_impl`] — [`DeepPotential`], the `dp_md::Potential`
//!   implementation with double / mixed / single / emulated-fp16 precision
//!   modes (§5.2.3),
//! * [`profile`] — per-kernel-category timers reproducing Fig 3's GEMM /
//!   TANH / CUSTOM / SLICE breakdown,
//! * [`compress`] — tabulated (spline-compressed) embedding nets, the
//!   paper's future-work direction that became DeePMD-kit's model
//!   compression: no embedding GEMMs or tanh in the MD hot path.

pub mod baseline;
pub mod batch;
pub mod codec;
pub mod compress;
pub mod config;
pub mod env;
pub mod eval;
pub mod format;
pub mod model;
pub mod potential_impl;
pub mod profile;
pub mod workspace;

pub use config::DpConfig;
pub use model::DpModel;
pub use workspace::EvalWorkspace;
pub use potential_impl::{BatchItem, BatchOutput, BatchResult, DeepPotential, PrecisionMode};
