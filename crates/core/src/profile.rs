//! Per-kernel-category wall-time accounting (Fig 3).
//!
//! The paper's Fig 3 is a stacked bar chart of GPU execution time per
//! TensorFlow operator class: GEMM, TANH, SLICE, CUSTOM (environment /
//! force / virial), and Others. We reproduce the same taxonomy with scoped
//! wall-clock timers around the corresponding CPU kernels.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Kernel categories matching Fig 3's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense affine transforms (MATMUL+SUM fused into GEMM).
    Gemm,
    /// Activation evaluation (fused TANH + TANHGrad).
    Tanh,
    /// Row gather/scatter and reshapes between type blocks.
    Slice,
    /// The customized operators: Environment, ProdForce, ProdVirial,
    /// neighbor formatting.
    Custom,
    /// Everything else in the MD loop.
    Other,
}

const N_KERNELS: usize = 5;

/// Accumulates wall time per kernel category. Cheap enough to keep on in
/// benches; pass `None` in hot production paths.
#[derive(Debug, Default)]
pub struct Profiler {
    totals: Mutex<[Duration; N_KERNELS]>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure, attributing it to `kernel`.
    pub fn time<R>(&self, kernel: Kernel, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(kernel, start.elapsed());
        out
    }

    pub fn add(&self, kernel: Kernel, d: Duration) {
        self.totals.lock()[kernel as usize] += d;
    }

    pub fn total(&self, kernel: Kernel) -> Duration {
        self.totals.lock()[kernel as usize]
    }

    pub fn grand_total(&self) -> Duration {
        self.totals.lock().iter().sum()
    }

    /// Percentages in Fig 3 order: (GEMM, TANH, SLICE, CUSTOM, Others).
    pub fn percentages(&self) -> [f64; N_KERNELS] {
        let t = self.totals.lock();
        let total: f64 = t.iter().map(|d| d.as_secs_f64()).sum();
        if total == 0.0 {
            return [0.0; N_KERNELS];
        }
        [
            t[Kernel::Gemm as usize].as_secs_f64() / total * 100.0,
            t[Kernel::Tanh as usize].as_secs_f64() / total * 100.0,
            t[Kernel::Slice as usize].as_secs_f64() / total * 100.0,
            t[Kernel::Custom as usize].as_secs_f64() / total * 100.0,
            t[Kernel::Other as usize].as_secs_f64() / total * 100.0,
        ]
    }

    pub fn reset(&self) {
        *self.totals.lock() = [Duration::ZERO; N_KERNELS];
    }
}

/// Helper: time a closure against an optional profiler.
#[inline]
pub fn maybe_time<R>(prof: Option<&Profiler>, kernel: Kernel, f: impl FnOnce() -> R) -> R {
    match prof {
        Some(p) => p.time(kernel, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports_percentages() {
        let p = Profiler::new();
        p.add(Kernel::Gemm, Duration::from_millis(30));
        p.add(Kernel::Tanh, Duration::from_millis(10));
        p.add(Kernel::Custom, Duration::from_millis(10));
        let pct = p.percentages();
        assert!((pct[0] - 60.0).abs() < 1e-9);
        assert!((pct[1] - 20.0).abs() < 1e-9);
        assert!((pct[3] - 20.0).abs() < 1e-9);
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn timing_a_closure_returns_its_value() {
        let p = Profiler::new();
        let v = p.time(Kernel::Other, || 42);
        assert_eq!(v, 42);
        assert!(p.total(Kernel::Other) > Duration::ZERO);
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.add(Kernel::Gemm, Duration::from_millis(5));
        p.reset();
        assert_eq!(p.grand_total(), Duration::ZERO);
        assert_eq!(p.percentages(), [0.0; 5]);
    }
}
