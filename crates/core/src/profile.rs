//! Per-kernel-category wall-time accounting (Fig 3) — a thin shim over
//! [`dp_obs`].
//!
//! The paper's Fig 3 is a stacked bar chart of GPU execution time per
//! TensorFlow operator class: GEMM, TANH, SLICE, CUSTOM (environment /
//! force / virial), and Others. We keep the same taxonomy and the same
//! public API as before, but every timed closure now also opens a dp-obs
//! span (named `gemm` / `tanh` / `slice` / `custom` / `other`), so the
//! kernel categories show up in chrome traces and the global span
//! aggregates whenever the observability subsystem is enabled. The
//! per-instance totals that Fig 3's percentages are computed from are
//! plain relaxed atomics — no lock on the timing path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Kernel categories matching Fig 3's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense affine transforms (MATMUL+SUM fused into GEMM).
    Gemm,
    /// Activation evaluation (fused TANH + TANHGrad).
    Tanh,
    /// Row gather/scatter and reshapes between type blocks.
    Slice,
    /// The customized operators: Environment, ProdForce, ProdVirial,
    /// neighbor formatting.
    Custom,
    /// Everything else in the MD loop.
    Other,
}

impl Kernel {
    /// dp-obs span name for this category.
    pub fn span_name(self) -> &'static str {
        match self {
            Kernel::Gemm => "gemm",
            Kernel::Tanh => "tanh",
            Kernel::Slice => "slice",
            Kernel::Custom => "custom",
            Kernel::Other => "other",
        }
    }
}

const N_KERNELS: usize = 5;

/// Accumulates wall time per kernel category. Cheap enough to keep on in
/// benches; pass `None` in hot production paths.
#[derive(Debug)]
pub struct Profiler {
    totals_ns: [AtomicU64; N_KERNELS],
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    pub fn new() -> Self {
        Self {
            totals_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Time a closure, attributing it to `kernel` (and to the matching
    /// dp-obs span when the subsystem is enabled).
    pub fn time<R>(&self, kernel: Kernel, f: impl FnOnce() -> R) -> R {
        let _span = dp_obs::span(kernel.span_name());
        let start = Instant::now();
        let out = f();
        self.add(kernel, start.elapsed());
        out
    }

    pub fn add(&self, kernel: Kernel, d: Duration) {
        self.totals_ns[kernel as usize].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn total(&self, kernel: Kernel) -> Duration {
        Duration::from_nanos(self.totals_ns[kernel as usize].load(Ordering::Relaxed))
    }

    pub fn grand_total(&self) -> Duration {
        self.totals_ns
            .iter()
            .map(|t| Duration::from_nanos(t.load(Ordering::Relaxed)))
            .sum()
    }

    /// Percentages in Fig 3 order: (GEMM, TANH, SLICE, CUSTOM, Others).
    pub fn percentages(&self) -> [f64; N_KERNELS] {
        let t: [f64; N_KERNELS] =
            std::array::from_fn(|k| self.totals_ns[k].load(Ordering::Relaxed) as f64);
        let total: f64 = t.iter().sum();
        if total == 0.0 {
            return [0.0; N_KERNELS];
        }
        [
            t[Kernel::Gemm as usize] / total * 100.0,
            t[Kernel::Tanh as usize] / total * 100.0,
            t[Kernel::Slice as usize] / total * 100.0,
            t[Kernel::Custom as usize] / total * 100.0,
            t[Kernel::Other as usize] / total * 100.0,
        ]
    }

    pub fn reset(&self) {
        for t in &self.totals_ns {
            t.store(0, Ordering::Relaxed);
        }
    }
}

/// Helper: time a closure against an optional profiler.
#[inline]
pub fn maybe_time<R>(prof: Option<&Profiler>, kernel: Kernel, f: impl FnOnce() -> R) -> R {
    match prof {
        Some(p) => p.time(kernel, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports_percentages() {
        let p = Profiler::new();
        p.add(Kernel::Gemm, Duration::from_millis(30));
        p.add(Kernel::Tanh, Duration::from_millis(10));
        p.add(Kernel::Custom, Duration::from_millis(10));
        let pct = p.percentages();
        assert!((pct[0] - 60.0).abs() < 1e-9);
        assert!((pct[1] - 20.0).abs() < 1e-9);
        assert!((pct[3] - 20.0).abs() < 1e-9);
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn timing_a_closure_returns_its_value() {
        let p = Profiler::new();
        let v = p.time(Kernel::Other, || 42);
        assert_eq!(v, 42);
        assert!(p.total(Kernel::Other) > Duration::ZERO);
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.add(Kernel::Gemm, Duration::from_millis(5));
        p.reset();
        assert_eq!(p.grand_total(), Duration::ZERO);
        assert_eq!(p.percentages(), [0.0; 5]);
    }

    #[test]
    fn kernel_time_feeds_obs_spans_when_enabled() {
        dp_obs::enable();
        let p = Profiler::new();
        p.time(Kernel::Gemm, || std::hint::black_box(1u64));
        dp_obs::disable();
        let s = dp_obs::stat("gemm").expect("gemm span aggregated");
        assert!(s.count >= 1);
    }
}
