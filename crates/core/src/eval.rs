//! Optimized Deep Potential evaluation (§5.2–§5.3).
//!
//! The pipeline mirrors the optimized GPU DeePMD-kit:
//!
//! 1. **Batched embedding**: thanks to the fixed-shape formatted layout,
//!    the `s(r)` inputs of *all* atoms' neighbors of one type form a single
//!    tall column, so each embedding layer is one tall GEMM + one fused
//!    tanh kernel instead of per-atom small ops — the "computational
//!    granularity" innovation of §5.2.1.
//! 2. **Descriptor contraction** (custom op): per atom,
//!    `T1 = Ḡᵀ R̃ / Nm`, `T2 = R̃ᵀ G⁻ / Nm`, `D = T1 T2`.
//! 3. **Batched fitting** per center type, 240-wide residual layers with
//!    fused GEMM+bias and fused tanh+grad.
//! 4. **Backward** through fitting, descriptor and embedding using the
//!    cached tanh gradients (no recomputation, §5.3.3).
//! 5. **ProdForce / ProdVirial** (custom ops): chain `∂E/∂R̃` and the
//!    embedding-input gradient through the geometric Jacobian and scatter
//!    into per-atom forces and the virial.
//!
//! The whole pipeline is generic over precision `T`; the mixed-precision
//! mode (§5.2.3) runs it in `f32` on an environment matrix built in `f64`,
//! converting the per-slot force gradients back to `f64` before
//! accumulation — exactly the paper's conversion points.
//!
//! Atoms are processed in chunks so peak memory stays bounded at paper-size
//! neighbor counts (the GPU code relies on 16 GB device memory instead).

use crate::format::{FormattedEnv, NONE};
use crate::model::DpModel;
use crate::profile::{maybe_time, Kernel, Profiler};
use crate::workspace::{reuse_uninit, reuse_zeroed, EvalWorkspace, NetPass};
use dp_linalg::fused::{dup_sum_fused_into, tanh_fused_into};
use dp_linalg::gemm::{gemm_bias_into, matmul_nt_into};
use dp_linalg::{Matrix, Real};
use dp_nn::layer::LayerKind;
use dp_nn::net::Net;
use rayon::prelude::*;

/// Result of one evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    pub energy: f64,
    pub per_atom_energy: Vec<f64>,
    pub forces: Vec<[f64; 3]>,
    pub virial: [f64; 6],
}

/// Upper bound on atoms per pipeline chunk.
pub const CHUNK: usize = 256;

/// Atoms per pipeline chunk: targets ~32k embedding rows per neighbor
/// type so the GEMMs stay tall while activation memory stays bounded even
/// at the paper's sel=500 copper setting.
pub fn chunk_size(max_sel: usize) -> usize {
    (32_768 / max_sel.max(1)).clamp(16, CHUNK)
}

/// Profiled re-implementation of `Net::forward_cached` writing into the
/// workspace's [`NetPass`] buffers (no allocation in steady state),
/// attributing GEMM and activation time to their Fig 3 categories. Kept in
/// lockstep with `dp_nn::Layer::forward` (equivalence is tested). The final
/// activation lands in `pass.out`; cached tanh gradients in `pass.tgrads`.
fn net_forward_into<T: Real>(
    net: &Net<T>,
    x: &Matrix<T>,
    pass: &mut NetPass<T>,
    prof: Option<&Profiler>,
) {
    pass.ensure_layers(net.layers.len());
    let NetPass {
        out,
        tgrads,
        pre,
        act,
        skip,
    } = pass;
    out.copy_from(x);
    for (li, l) in net.layers.iter().enumerate() {
        maybe_time(prof, Kernel::Gemm, || gemm_bias_into(out, &l.w, &l.b, pre));
        match l.kind {
            LayerKind::Linear => {
                tgrads[li].reuse_shape(0, 0);
                std::mem::swap(out, pre);
            }
            LayerKind::Plain => {
                maybe_time(prof, Kernel::Tanh, || {
                    tanh_fused_into(pre, act, &mut tgrads[li])
                });
                std::mem::swap(out, act);
            }
            LayerKind::Growth => {
                maybe_time(prof, Kernel::Tanh, || {
                    tanh_fused_into(pre, act, &mut tgrads[li])
                });
                maybe_time(prof, Kernel::Other, || dup_sum_fused_into(out, act, skip));
                std::mem::swap(out, skip);
            }
            LayerKind::Residual => {
                maybe_time(prof, Kernel::Tanh, || {
                    tanh_fused_into(pre, act, &mut tgrads[li])
                });
                act.axpy(T::ONE, out);
                std::mem::swap(out, act);
            }
        }
    }
}

/// Profiled `Net::backward_input` (same taxonomy) using the tanh gradients
/// cached by [`net_forward_into`]. The input gradient lands in `g`; `sa`
/// and `sb` are ping-pong scratch.
fn net_backward_into<T: Real>(
    net: &Net<T>,
    tgrads: &[Matrix<T>],
    dy: &Matrix<T>,
    g: &mut Matrix<T>,
    sa: &mut Matrix<T>,
    sb: &mut Matrix<T>,
    prof: Option<&Profiler>,
) {
    g.copy_from(dy);
    for (l, c) in net.layers.iter().zip(&tgrads[..net.layers.len()]).rev() {
        match l.kind {
            LayerKind::Linear => {
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(g, &l.w, sa));
                std::mem::swap(g, sa);
            }
            LayerKind::Plain => {
                maybe_time(prof, Kernel::Tanh, || g.hadamard_assign(c));
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(g, &l.w, sa));
                std::mem::swap(g, sa);
            }
            LayerKind::Residual => {
                maybe_time(prof, Kernel::Tanh, || {
                    sa.copy_from(g);
                    sa.hadamard_assign(c);
                });
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(sa, &l.w, sb));
                sb.axpy(T::ONE, g);
                std::mem::swap(g, sb);
            }
            LayerKind::Growth => {
                maybe_time(prof, Kernel::Tanh, || {
                    sa.copy_from(g);
                    sa.hadamard_assign(c);
                });
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(sa, &l.w, sb));
                let k = l.w.rows();
                for i in 0..g.rows() {
                    let g_row = g.row(i);
                    let dx_row = sb.row_mut(i);
                    for j in 0..k {
                        dx_row[j] += g_row[j] + g_row[j + k];
                    }
                }
                std::mem::swap(g, sb);
            }
        }
    }
}

/// Evaluate energy, forces and virial for the formatted environment.
///
/// `types` are the species of the `fmt.n_atoms` local atoms; `n_total`
/// includes ghosts (forces on ghosts are accumulated for the reverse
/// communication pass of the parallel driver).
///
/// Convenience wrapper over [`evaluate_into`] that allocates a fresh
/// workspace and output per call.
pub fn evaluate<T: Real>(
    model: &DpModel<T>,
    fmt: &FormattedEnv,
    types: &[usize],
    n_total: usize,
    prof: Option<&Profiler>,
) -> EvalOutput {
    let mut ws = EvalWorkspace::new(&model.config);
    let mut out = EvalOutput {
        energy: 0.0,
        per_atom_energy: Vec::new(),
        forces: Vec::new(),
        virial: [0.0; 6],
    };
    evaluate_into(model, fmt, types, n_total, prof, &mut ws, &mut out);
    out
}

/// [`evaluate`] into caller-provided workspace and output buffers — the
/// §5.2.2 "trunk of memory" hot path. After a few warm-up calls at a fixed
/// problem size this performs zero heap allocations; results are identical
/// to [`evaluate`] regardless of what the workspace previously held.
pub fn evaluate_into<T: Real>(
    model: &DpModel<T>,
    fmt: &FormattedEnv,
    types: &[usize],
    n_total: usize,
    prof: Option<&Profiler>,
    ws: &mut EvalWorkspace<T>,
    out: &mut EvalOutput,
) {
    assert_eq!(types.len(), fmt.n_atoms);
    assert!(n_total >= fmt.n_atoms);
    let cfg = &model.config;
    let n_types = cfg.n_types();
    let m_w = cfg.emb_width();
    let m2 = cfg.axis_neurons;
    let d_in = cfg.descriptor_dim();
    let nm = fmt.nm;
    let inv_nm = T::from_f64(1.0 / nm as f64);

    // Grow per-type slots if the workspace was built for a smaller model.
    while ws.emb_passes.len() < n_types {
        ws.emb_passes.push(NetPass::default());
    }
    while ws.dg_mats.len() < n_types {
        ws.dg_mats.push(Matrix::zeros(0, 0));
    }
    while ws.ds_cols.len() < n_types {
        ws.ds_cols.push(Matrix::zeros(0, 0));
    }
    while ws.denv_blocks.len() < n_types {
        ws.denv_blocks.push(Vec::new());
    }
    while ws.by_type.len() < n_types {
        ws.by_type.push(Vec::new());
    }

    let EvalWorkspace {
        emb_passes,
        fit_pass,
        bwd_g,
        bwd_a,
        bwd_b,
        s_col,
        fit_x,
        ones,
        dg_mats,
        ds_cols,
        denv_blocks,
        desc,
        t1,
        t2,
        dt1,
        dt2,
        d_desc,
        by_type,
        block_off,
        slot_grads,
    } = ws;

    let EvalOutput {
        energy,
        per_atom_energy,
        forces,
        virial,
    } = out;
    reuse_zeroed(per_atom_energy, fmt.n_atoms, 0.0);
    reuse_zeroed(forces, n_total, [0.0; 3]);
    *virial = [0.0; 6];

    // type-block offsets within an atom's slot range
    reuse_uninit(block_off, n_types + 1, 0);
    block_off[0] = 0;
    for t in 0..n_types {
        block_off[t + 1] = block_off[t] + cfg.sel[t];
    }

    let chunk = chunk_size(cfg.sel.iter().copied().max().unwrap_or(1));
    let mut chunk_start = 0usize;
    while chunk_start < fmt.n_atoms {
        let chunk_end = (chunk_start + chunk).min(fmt.n_atoms);
        let nc = chunk_end - chunk_start;

        // ---- 1. batched embedding per neighbor type ----
        let emb_span = dp_obs::span("embedding_gemm");
        for t in 0..n_types {
            let rows = nc * cfg.sel[t];
            maybe_time(prof, Kernel::Slice, || {
                s_col.reuse_shape(rows, 1);
                let data = s_col.as_mut_slice();
                for a in 0..nc {
                    let slot0 = (chunk_start + a) * nm + block_off[t];
                    for k in 0..cfg.sel[t] {
                        data[a * cfg.sel[t] + k] = T::from_f64(fmt.env[(slot0 + k) * 4]);
                    }
                }
            });
            net_forward_into(&model.embeddings[t], s_col, &mut emb_passes[t], prof);
        }
        drop(emb_span);

        // ---- 2. descriptor contraction (custom op) ----
        // per atom in chunk: T1 (m_w x 4), T2 (4 x m2), D = T1*T2, all in
        // flat per-atom workspace blocks
        let desc_span = dp_obs::span("descriptor");
        reuse_zeroed(desc, nc * m_w * m2, T::ZERO);
        reuse_zeroed(t1, nc * m_w * 4, T::ZERO);
        reuse_zeroed(t2, nc * 4 * m2, T::ZERO);
        {
            let emb_passes = &*emb_passes;
            let block_off = &*block_off;
            maybe_time(prof, Kernel::Custom, || {
                desc.par_chunks_mut(m_w * m2)
                    .zip(t1.par_chunks_mut(m_w * 4))
                    .zip(t2.par_chunks_mut(4 * m2))
                    .enumerate()
                    .for_each(|(a, ((d, t1a), t2a))| {
                        let atom = chunk_start + a;
                        for t in 0..n_types {
                            let g = &emb_passes[t].out;
                            for k in 0..cfg.sel[t] {
                                let slot = atom * nm + block_off[t] + k;
                                if fmt.indices[slot] == NONE {
                                    // padded rows have zero env; their G row
                                    // would multiply zero — skip entirely
                                    continue;
                                }
                                let w = [
                                    T::from_f64(fmt.env[slot * 4]),
                                    T::from_f64(fmt.env[slot * 4 + 1]),
                                    T::from_f64(fmt.env[slot * 4 + 2]),
                                    T::from_f64(fmt.env[slot * 4 + 3]),
                                ];
                                let g_row = g.row(a * cfg.sel[t] + k);
                                for (mi, &gm) in g_row.iter().enumerate() {
                                    for c in 0..4 {
                                        t1a[mi * 4 + c] += gm * w[c];
                                    }
                                }
                                for c in 0..4 {
                                    for (ai, &ga) in g_row[..m2].iter().enumerate() {
                                        t2a[c * m2 + ai] += w[c] * ga;
                                    }
                                }
                            }
                        }
                        for x in t1a.iter_mut() {
                            *x *= inv_nm;
                        }
                        for x in t2a.iter_mut() {
                            *x *= inv_nm;
                        }
                        // D = T1 (m_w x 4) * T2 (4 x m2)
                        for mi in 0..m_w {
                            for c in 0..4 {
                                let t1v = t1a[mi * 4 + c];
                                for ai in 0..m2 {
                                    d[mi * m2 + ai] += t1v * t2a[c * m2 + ai];
                                }
                            }
                        }
                    });
            });
        }
        drop(desc_span);

        // ---- 3. batched fitting per center type ----
        let fit_span = dp_obs::span("fitting_net");
        // gather chunk atoms by type
        for v in by_type.iter_mut() {
            v.clear();
        }
        for a in 0..nc {
            by_type[types[chunk_start + a]].push(a);
        }
        // dE/dD per atom (filled from fitting backward; every chunk atom
        // belongs to exactly one center type, so every row is written)
        reuse_uninit(d_desc, nc * d_in, T::ZERO);
        for t in 0..n_types {
            if by_type[t].is_empty() {
                continue;
            }
            let rows = by_type[t].len();
            maybe_time(prof, Kernel::Slice, || {
                fit_x.reuse_shape(rows, d_in);
                for (r, &a) in by_type[t].iter().enumerate() {
                    fit_x
                        .row_mut(r)
                        .copy_from_slice(&desc[a * d_in..(a + 1) * d_in]);
                }
            });
            net_forward_into(&model.fittings[t], fit_x, fit_pass, prof);
            for (r, &a) in by_type[t].iter().enumerate() {
                per_atom_energy[chunk_start + a] = fit_pass.out[(r, 0)].to_f64() + model.e0[t];
            }
            // ---- 4. fitting backward: dE/dD ----
            ones.reuse_shape(rows, 1);
            ones.as_mut_slice().fill(T::ONE);
            net_backward_into(
                &model.fittings[t],
                &fit_pass.tgrads,
                ones,
                bwd_g,
                bwd_a,
                bwd_b,
                prof,
            );
            maybe_time(prof, Kernel::Slice, || {
                for (r, &a) in by_type[t].iter().enumerate() {
                    d_desc[a * d_in..(a + 1) * d_in].copy_from_slice(bwd_g.row(r));
                }
            });
        }
        drop(fit_span);

        // ---- 5. descriptor backward (custom op) ----
        let desc_bwd_span = dp_obs::span("descriptor_backward");
        // produces dG rows (per neighbor type, batched) and dE/dR̃ rows;
        // zeroed so padded slots stay zero as with fresh allocation
        for t in 0..n_types {
            let sel_t = cfg.sel[t];
            dg_mats[t].reuse_shape(nc * sel_t, m_w);
            dg_mats[t].fill_zero();
            // dE/dR̃ per type block: 4 per slot, f64 for the f64 ProdForce
            reuse_zeroed(&mut denv_blocks[t], nc * sel_t * 4, 0.0);
        }
        reuse_uninit(dt1, nc * m_w * 4, T::ZERO);
        reuse_uninit(dt2, nc * 4 * m2, T::ZERO);
        maybe_time(prof, Kernel::Custom, || {
            for t in 0..n_types {
                let sel_t = cfg.sel[t];
                let g = &emb_passes[t].out;
                let block = block_off[t];
                let (dg, denv_t) = (&mut dg_mats[t], &mut denv_blocks[t]);
                let d_desc = &*d_desc;
                let (t1s, t2s) = (&*t1, &*t2);
                dg.as_mut_slice()
                    .par_chunks_mut(sel_t * m_w)
                    .zip(denv_t.par_chunks_mut(sel_t * 4))
                    .zip(dt1.par_chunks_mut(m_w * 4))
                    .zip(dt2.par_chunks_mut(4 * m2))
                    .enumerate()
                    .for_each(|(a, (((dg_atom, denv_atom), dt1), dt2))| {
                        let atom = chunk_start + a;
                        let dd = &d_desc[a * d_in..(a + 1) * d_in];
                        let ctx_t1 = &t1s[a * m_w * 4..(a + 1) * m_w * 4];
                        let ctx_t2 = &t2s[a * 4 * m2..(a + 1) * 4 * m2];
                        // dT1[mi][c] = Σ_ai dd[mi*m2+ai] * t2[c*m2+ai]
                        // dT2[c][ai] = Σ_mi t1[mi*4+c] * dd[mi*m2+ai]
                        for mi in 0..m_w {
                            for c in 0..4 {
                                let mut acc = T::ZERO;
                                for ai in 0..m2 {
                                    acc += dd[mi * m2 + ai] * ctx_t2[c * m2 + ai];
                                }
                                dt1[mi * 4 + c] = acc;
                            }
                        }
                        for c in 0..4 {
                            for ai in 0..m2 {
                                let mut acc = T::ZERO;
                                for mi in 0..m_w {
                                    acc += ctx_t1[mi * 4 + c] * dd[mi * m2 + ai];
                                }
                                dt2[c * m2 + ai] = acc;
                            }
                        }
                        for k in 0..sel_t {
                            let slot = atom * nm + block + k;
                            if fmt.indices[slot] == NONE {
                                continue;
                            }
                            let w = [
                                T::from_f64(fmt.env[slot * 4]),
                                T::from_f64(fmt.env[slot * 4 + 1]),
                                T::from_f64(fmt.env[slot * 4 + 2]),
                                T::from_f64(fmt.env[slot * 4 + 3]),
                            ];
                            let g_row = g.row(a * sel_t + k);
                            let dg_row = &mut dg_atom[k * m_w..(k + 1) * m_w];
                            // dG[mi] = Σ_c w[c]*dT1[mi][c] (+ T2 path for mi<m2)
                            for mi in 0..m_w {
                                let mut acc = T::ZERO;
                                for c in 0..4 {
                                    acc += w[c] * dt1[mi * 4 + c];
                                }
                                dg_row[mi] = acc * inv_nm;
                            }
                            for ai in 0..m2 {
                                let mut acc = T::ZERO;
                                for c in 0..4 {
                                    acc += w[c] * dt2[c * m2 + ai];
                                }
                                dg_row[ai] += acc * inv_nm;
                            }
                            // dE/dR̃[c] = Σ_mi g[mi]*dT1[mi][c]
                            //           + Σ_ai dT2[c][ai]*g[ai]
                            for c in 0..4 {
                                let mut acc = T::ZERO;
                                for (mi, &gm) in g_row.iter().enumerate() {
                                    acc += gm * dt1[mi * 4 + c];
                                }
                                for ai in 0..m2 {
                                    acc += dt2[c * m2 + ai] * g_row[ai];
                                }
                                denv_atom[k * 4 + c] = (acc * inv_nm).to_f64();
                            }
                        }
                    });
            }
        });
        drop(desc_bwd_span);

        // ---- 6. embedding backward: dE/ds per slot ----
        let emb_bwd_span = dp_obs::span("embedding_backward");
        for t in 0..n_types {
            net_backward_into(
                &model.embeddings[t],
                &emb_passes[t].tgrads,
                &dg_mats[t],
                bwd_g,
                bwd_a,
                bwd_b,
                prof,
            );
            std::mem::swap(bwd_g, &mut ds_cols[t]);
        }
        drop(emb_bwd_span);

        // ---- 7/8. ProdForce + ProdVirial (custom ops, f64) ----
        reuse_uninit(slot_grads, nc * nm, [0.0; 3]);
        maybe_time(prof, Kernel::Custom, || {
            // per-slot total gradient dE/dd (parallel), then scatter (serial)
            let force_span = dp_obs::span("prod_force");
            let ds_cols = &*ds_cols;
            let denv_blocks = &*denv_blocks;
            let block_off = &*block_off;
            slot_grads.par_chunks_mut(nm).enumerate().for_each(|(a, sg)| {
                let atom = chunk_start + a;
                for (within, out_g) in sg.iter_mut().enumerate() {
                    let slot = atom * nm + within;
                    if fmt.indices[slot] == NONE {
                        *out_g = [0.0; 3];
                        continue;
                    }
                    // which type block is this slot in?
                    let t = block_off[1..=n_types]
                        .iter()
                        .position(|&end| within < end)
                        .expect("slot outside type blocks");
                    let k = within - block_off[t];
                    let ds = ds_cols[t][(a * cfg.sel[t] + k, 0)].to_f64();
                    let base = (a * cfg.sel[t] + k) * 4;
                    let denv_atom = &denv_blocks[t];
                    let gw = [
                        denv_atom[base] + ds,
                        denv_atom[base + 1],
                        denv_atom[base + 2],
                        denv_atom[base + 3],
                    ];
                    let jac = &fmt.denv[slot * 12..slot * 12 + 12];
                    let mut g = [0.0; 3];
                    for kk in 0..3 {
                        g[kk] = gw[0] * jac[kk]
                            + gw[1] * jac[3 + kk]
                            + gw[2] * jac[6 + kk]
                            + gw[3] * jac[9 + kk];
                    }
                    *out_g = g;
                }
            });
            drop(force_span);
            let _virial_span = dp_obs::span("prod_virial");
            for (local_slot, g) in slot_grads.iter().enumerate() {
                let atom = chunk_start + local_slot / nm;
                let slot = atom * nm + local_slot % nm;
                let j = fmt.indices[slot];
                if j == NONE {
                    continue;
                }
                let j = j as usize;
                let d = &fmt.disp[slot * 3..slot * 3 + 3];
                for kk in 0..3 {
                    forces[atom][kk] += g[kk];
                    forces[j][kk] -= g[kk];
                }
                virial[0] -= d[0] * g[0];
                virial[1] -= d[1] * g[1];
                virial[2] -= d[2] * g[2];
                virial[3] -= d[0] * g[1];
                virial[4] -= d[0] * g[2];
                virial[5] -= d[1] * g[2];
            }
        });

        chunk_start = chunk_end;
    }

    *energy = per_atom_energy.iter().sum();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::config::DpConfig;
    use crate::format::format_optimized;
    use dp_md::{lattice, units, NeighborList, System};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_setup() -> (DpModel<f64>, System, FormattedEnv) {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(11);
        let model = DpModel::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        (model, sys, fmt)
    }

    #[test]
    fn energy_is_sum_of_atomic_contributions() {
        let (model, sys, fmt) = test_setup();
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let sum: f64 = out.per_atom_energy.iter().sum();
        assert!((out.energy - sum).abs() < 1e-10);
        assert_eq!(out.per_atom_energy.len(), sys.len());
    }

    #[test]
    fn forces_sum_to_zero() {
        // translation invariance => ΣF = 0
        let (model, sys, fmt) = test_setup();
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let mut total = [0.0; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(total[k].abs() < 1e-9, "net force {total:?}");
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let (model, mut sys, _) = test_setup();
        let cfg = &model.config;
        let compute = |sys: &System| {
            let nl = NeighborList::build(sys, cfg.rcut);
            let fmt = format_optimized(sys, &nl, cfg, Codec::PaperDecimal);
            evaluate(&model, &fmt, &sys.types, sys.len(), None)
        };
        let out = compute(&sys);
        let eps = 1e-6;
        for &i in &[0usize, 13, 50] {
            for k in 0..3 {
                let orig = sys.positions[i][k];
                sys.positions[i][k] = orig + eps;
                let ep = compute(&sys).energy;
                sys.positions[i][k] = orig - eps;
                let em = compute(&sys).energy;
                sys.positions[i][k] = orig;
                let fd = -(ep - em) / (2.0 * eps);
                assert!(
                    (fd - out.forces[i][k]).abs() < 1e-6,
                    "atom {i} dim {k}: fd {fd} vs {}",
                    out.forces[i][k]
                );
            }
        }
    }

    #[test]
    fn e0_shifts_energy_linearly() {
        let (mut model, sys, fmt) = test_setup();
        let out0 = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        model.e0[0] += 1.5;
        let out1 = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let expect = out0.energy + 1.5 * sys.len() as f64;
        assert!((out1.energy - expect).abs() < 1e-9);
        // forces unchanged
        for (a, b) in out0.forces.iter().zip(&out1.forces) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn profiled_forward_matches_plain() {
        let (model, sys, fmt) = test_setup();
        let prof = Profiler::new();
        let a = evaluate(&model, &fmt, &sys.types, sys.len(), Some(&prof));
        let b = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        assert!((a.energy - b.energy).abs() < 1e-12);
        assert!(prof.grand_total().as_nanos() > 0);
        let pct = prof.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn chunking_is_invisible() {
        // a system larger than one chunk gives identical energies to a
        // manual per-chunk evaluation — i.e. chunk boundaries don't leak
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(12);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [5, 5, 5], units::MASS_CU); // 500 atoms > CHUNK
        sys.perturb(0.05, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        // reference: evaluate per single atom via baseline-like loop is in
        // baseline.rs tests; here check translation invariance + finiteness
        assert!(out.energy.is_finite());
        assert_eq!(out.forces.len(), 500);
        let mut total = [0.0; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(total[k].abs() < 1e-8);
        }
    }
}
