//! Optimized Deep Potential evaluation (§5.2–§5.3).
//!
//! The pipeline mirrors the optimized GPU DeePMD-kit:
//!
//! 1. **Batched embedding**: thanks to the fixed-shape formatted layout,
//!    the `s(r)` inputs of *all* atoms' neighbors of one type form a single
//!    tall column, so each embedding layer is one tall GEMM + one fused
//!    tanh kernel instead of per-atom small ops — the "computational
//!    granularity" innovation of §5.2.1.
//! 2. **Descriptor contraction** (custom op): per atom,
//!    `T1 = Ḡᵀ R̃ / Nm`, `T2 = R̃ᵀ G⁻ / Nm`, `D = T1 T2`.
//! 3. **Batched fitting** per center type, 240-wide residual layers with
//!    fused GEMM+bias and fused tanh+grad.
//! 4. **Backward** through fitting, descriptor and embedding using the
//!    cached tanh gradients (no recomputation, §5.3.3).
//! 5. **ProdForce / ProdVirial** (custom ops): chain `∂E/∂R̃` and the
//!    embedding-input gradient through the geometric Jacobian and scatter
//!    into per-atom forces and the virial.
//!
//! The whole pipeline is generic over precision `T`; the mixed-precision
//! mode (§5.2.3) runs it in `f32` on an environment matrix built in `f64`,
//! converting the per-slot force gradients back to `f64` before
//! accumulation — exactly the paper's conversion points.
//!
//! Atoms are processed in chunks so peak memory stays bounded at paper-size
//! neighbor counts (the GPU code relies on 16 GB device memory instead).

use crate::format::{FormattedEnv, NONE};
use crate::model::DpModel;
use crate::profile::{maybe_time, Kernel, Profiler};
use dp_linalg::fused::{dup_sum_fused, tanh_fused};
use dp_linalg::gemm::{gemm_bias, matmul_nt};
use dp_linalg::{Matrix, Real};
use dp_nn::layer::{LayerCache, LayerKind};
use dp_nn::net::Net;
use rayon::prelude::*;

/// Result of one evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    pub energy: f64,
    pub per_atom_energy: Vec<f64>,
    pub forces: Vec<[f64; 3]>,
    pub virial: [f64; 6],
}

/// Upper bound on atoms per pipeline chunk.
pub const CHUNK: usize = 256;

/// Atoms per pipeline chunk: targets ~32k embedding rows per neighbor
/// type so the GEMMs stay tall while activation memory stays bounded even
/// at the paper's sel=500 copper setting.
pub fn chunk_size(max_sel: usize) -> usize {
    (32_768 / max_sel.max(1)).clamp(16, CHUNK)
}

/// Profiled re-implementation of `Net::forward_cached`, attributing GEMM
/// and activation time to their Fig 3 categories. Kept in lockstep with
/// `dp_nn::Layer::forward` (equivalence is tested).
fn net_forward_profiled<T: Real>(
    net: &Net<T>,
    x: &Matrix<T>,
    prof: Option<&Profiler>,
) -> (Matrix<T>, Vec<LayerCache<T>>) {
    let mut caches = Vec::with_capacity(net.layers.len());
    let mut h = x.clone();
    for l in &net.layers {
        let pre = maybe_time(prof, Kernel::Gemm, || gemm_bias(&h, &l.w, &l.b));
        h = match l.kind {
            LayerKind::Linear => {
                caches.push(LayerCache {
                    tgrad: Matrix::zeros(0, 0),
                });
                pre
            }
            LayerKind::Plain => {
                let (t, g) = maybe_time(prof, Kernel::Tanh, || tanh_fused(&pre));
                caches.push(LayerCache { tgrad: g });
                t
            }
            LayerKind::Growth => {
                let (t, g) = maybe_time(prof, Kernel::Tanh, || tanh_fused(&pre));
                caches.push(LayerCache { tgrad: g });
                maybe_time(prof, Kernel::Other, || dup_sum_fused(&h, &t))
            }
            LayerKind::Residual => {
                let (mut t, g) = maybe_time(prof, Kernel::Tanh, || tanh_fused(&pre));
                caches.push(LayerCache { tgrad: g });
                t.axpy(T::ONE, &h);
                t
            }
        };
    }
    (h, caches)
}

/// Profiled `Net::backward_input` (same taxonomy).
fn net_backward_profiled<T: Real>(
    net: &Net<T>,
    caches: &[LayerCache<T>],
    dy: &Matrix<T>,
    prof: Option<&Profiler>,
) -> Matrix<T> {
    let mut g = dy.clone();
    for (l, c) in net.layers.iter().zip(caches.iter()).rev() {
        g = match l.kind {
            LayerKind::Linear => maybe_time(prof, Kernel::Gemm, || matmul_nt(&g, &l.w)),
            LayerKind::Plain => {
                let dpre = maybe_time(prof, Kernel::Tanh, || g.hadamard(&c.tgrad));
                maybe_time(prof, Kernel::Gemm, || matmul_nt(&dpre, &l.w))
            }
            LayerKind::Residual => {
                let dpre = maybe_time(prof, Kernel::Tanh, || g.hadamard(&c.tgrad));
                let mut dx = maybe_time(prof, Kernel::Gemm, || matmul_nt(&dpre, &l.w));
                dx.axpy(T::ONE, &g);
                dx
            }
            LayerKind::Growth => {
                let dpre = maybe_time(prof, Kernel::Tanh, || g.hadamard(&c.tgrad));
                let mut dx = maybe_time(prof, Kernel::Gemm, || matmul_nt(&dpre, &l.w));
                let k = l.w.rows();
                for i in 0..g.rows() {
                    let g_row = g.row(i);
                    let dx_row = dx.row_mut(i);
                    for j in 0..k {
                        dx_row[j] += g_row[j] + g_row[j + k];
                    }
                }
                dx
            }
        };
    }
    g
}

/// Evaluate energy, forces and virial for the formatted environment.
///
/// `types` are the species of the `fmt.n_atoms` local atoms; `n_total`
/// includes ghosts (forces on ghosts are accumulated for the reverse
/// communication pass of the parallel driver).
pub fn evaluate<T: Real>(
    model: &DpModel<T>,
    fmt: &FormattedEnv,
    types: &[usize],
    n_total: usize,
    prof: Option<&Profiler>,
) -> EvalOutput {
    assert_eq!(types.len(), fmt.n_atoms);
    assert!(n_total >= fmt.n_atoms);
    let cfg = &model.config;
    let n_types = cfg.n_types();
    let m_w = cfg.emb_width();
    let m2 = cfg.axis_neurons;
    let nm = fmt.nm;
    let inv_nm = T::from_f64(1.0 / nm as f64);

    let mut per_atom_energy = vec![0.0f64; fmt.n_atoms];
    let mut forces = vec![[0.0f64; 3]; n_total];
    let mut virial = [0.0f64; 6];

    // type-block offsets within an atom's slot range
    let mut block_off = vec![0usize; n_types + 1];
    for t in 0..n_types {
        block_off[t + 1] = block_off[t] + cfg.sel[t];
    }

    let chunk = chunk_size(cfg.sel.iter().copied().max().unwrap_or(1));
    let mut chunk_start = 0usize;
    while chunk_start < fmt.n_atoms {
        let chunk_end = (chunk_start + chunk).min(fmt.n_atoms);
        let nc = chunk_end - chunk_start;

        // ---- 1. batched embedding per neighbor type ----
        let mut g_mats: Vec<Matrix<T>> = Vec::with_capacity(n_types);
        let mut g_caches: Vec<Vec<LayerCache<T>>> = Vec::with_capacity(n_types);
        let emb_span = dp_obs::span("embedding_gemm");
        for t in 0..n_types {
            let rows = nc * cfg.sel[t];
            let s_col = maybe_time(prof, Kernel::Slice, || {
                let mut s = Matrix::<T>::zeros(rows, 1);
                let data = s.as_mut_slice();
                for a in 0..nc {
                    let slot0 = (chunk_start + a) * nm + block_off[t];
                    for k in 0..cfg.sel[t] {
                        data[a * cfg.sel[t] + k] = T::from_f64(fmt.env[(slot0 + k) * 4]);
                    }
                }
                s
            });
            let (g, caches) = net_forward_profiled(&model.embeddings[t], &s_col, prof);
            g_mats.push(g);
            g_caches.push(caches);
        }
        drop(emb_span);

        // ---- 2. descriptor contraction (custom op) ----
        // per atom in chunk: T1 (m_w x 4), T2 (4 x m2), D = T1*T2
        struct AtomCtx<T> {
            t1: Vec<T>,
            t2: Vec<T>,
        }
        let desc_span = dp_obs::span("descriptor");
        let (descriptors, atom_ctx): (Vec<Vec<T>>, Vec<AtomCtx<T>>) =
            maybe_time(prof, Kernel::Custom, || {
                (0..nc)
                    .into_par_iter()
                    .map(|a| {
                        let atom = chunk_start + a;
                        let mut t1 = vec![T::ZERO; m_w * 4];
                        let mut t2 = vec![T::ZERO; 4 * m2];
                        for t in 0..n_types {
                            let g = &g_mats[t];
                            for k in 0..cfg.sel[t] {
                                let slot = atom * nm + block_off[t] + k;
                                if fmt.indices[slot] == NONE {
                                    // padded rows have zero env; their G row
                                    // would multiply zero — skip entirely
                                    continue;
                                }
                                let w = [
                                    T::from_f64(fmt.env[slot * 4]),
                                    T::from_f64(fmt.env[slot * 4 + 1]),
                                    T::from_f64(fmt.env[slot * 4 + 2]),
                                    T::from_f64(fmt.env[slot * 4 + 3]),
                                ];
                                let g_row = g.row(a * cfg.sel[t] + k);
                                for (mi, &gm) in g_row.iter().enumerate() {
                                    for c in 0..4 {
                                        t1[mi * 4 + c] += gm * w[c];
                                    }
                                }
                                for c in 0..4 {
                                    for (ai, &ga) in g_row[..m2].iter().enumerate() {
                                        t2[c * m2 + ai] += w[c] * ga;
                                    }
                                }
                            }
                        }
                        for x in &mut t1 {
                            *x *= inv_nm;
                        }
                        for x in &mut t2 {
                            *x *= inv_nm;
                        }
                        // D = T1 (m_w x 4) * T2 (4 x m2)
                        let mut d = vec![T::ZERO; m_w * m2];
                        for mi in 0..m_w {
                            for c in 0..4 {
                                let t1v = t1[mi * 4 + c];
                                for ai in 0..m2 {
                                    d[mi * m2 + ai] += t1v * t2[c * m2 + ai];
                                }
                            }
                        }
                        (d, AtomCtx { t1, t2 })
                    })
                    .unzip()
            });
        drop(desc_span);

        // ---- 3. batched fitting per center type ----
        let fit_span = dp_obs::span("fitting_net");
        // gather chunk atoms by type
        let mut by_type: Vec<Vec<usize>> = vec![Vec::new(); n_types];
        for a in 0..nc {
            by_type[types[chunk_start + a]].push(a);
        }
        // dE/dD per atom (filled from fitting backward)
        let mut d_desc: Vec<Vec<T>> = vec![Vec::new(); nc];
        for t in 0..n_types {
            if by_type[t].is_empty() {
                continue;
            }
            let rows = by_type[t].len();
            let d_in = cfg.descriptor_dim();
            let x = maybe_time(prof, Kernel::Slice, || {
                let mut x = Matrix::<T>::zeros(rows, d_in);
                for (r, &a) in by_type[t].iter().enumerate() {
                    x.row_mut(r).copy_from_slice(&descriptors[a]);
                }
                x
            });
            let (e_col, caches) = net_forward_profiled(&model.fittings[t], &x, prof);
            for (r, &a) in by_type[t].iter().enumerate() {
                per_atom_energy[chunk_start + a] = e_col[(r, 0)].to_f64() + model.e0[t];
            }
            // ---- 4. fitting backward: dE/dD ----
            let ones = Matrix::<T>::full(rows, 1, T::ONE);
            let dx = net_backward_profiled(&model.fittings[t], &caches, &ones, prof);
            maybe_time(prof, Kernel::Slice, || {
                for (r, &a) in by_type[t].iter().enumerate() {
                    d_desc[a] = dx.row(r).to_vec();
                }
            });
        }
        drop(fit_span);

        // ---- 5. descriptor backward (custom op) ----
        let desc_bwd_span = dp_obs::span("descriptor_backward");
        // produces dG rows (per neighbor type, batched) and dE/dR̃ rows
        let mut dg_mats: Vec<Matrix<T>> = (0..n_types)
            .map(|t| Matrix::<T>::zeros(nc * cfg.sel[t], m_w))
            .collect();
        // dE/dR̃ per type block: 4 per slot, f64 for the f64 ProdForce below
        let mut denv_blocks: Vec<Vec<f64>> = (0..n_types)
            .map(|t| vec![0.0f64; nc * cfg.sel[t] * 4])
            .collect();
        maybe_time(prof, Kernel::Custom, || {
            for t in 0..n_types {
                let sel_t = cfg.sel[t];
                let g = &g_mats[t];
                let block = block_off[t];
                let (dg, denv_t) = (&mut dg_mats[t], &mut denv_blocks[t]);
                dg.as_mut_slice()
                    .par_chunks_mut(sel_t * m_w)
                    .zip(denv_t.par_chunks_mut(sel_t * 4))
                    .enumerate()
                    .for_each(|(a, (dg_atom, denv_atom))| {
                        let atom = chunk_start + a;
                        let dd = &d_desc[a];
                        let ctx = &atom_ctx[a];
                        // dT1[mi][c] = Σ_ai dd[mi*m2+ai] * t2[c*m2+ai]
                        // dT2[c][ai] = Σ_mi t1[mi*4+c] * dd[mi*m2+ai]
                        let mut dt1 = vec![T::ZERO; m_w * 4];
                        let mut dt2 = vec![T::ZERO; 4 * m2];
                        for mi in 0..m_w {
                            for c in 0..4 {
                                let mut acc = T::ZERO;
                                for ai in 0..m2 {
                                    acc += dd[mi * m2 + ai] * ctx.t2[c * m2 + ai];
                                }
                                dt1[mi * 4 + c] = acc;
                            }
                        }
                        for c in 0..4 {
                            for ai in 0..m2 {
                                let mut acc = T::ZERO;
                                for mi in 0..m_w {
                                    acc += ctx.t1[mi * 4 + c] * dd[mi * m2 + ai];
                                }
                                dt2[c * m2 + ai] = acc;
                            }
                        }
                        for k in 0..sel_t {
                            let slot = atom * nm + block + k;
                            if fmt.indices[slot] == NONE {
                                continue;
                            }
                            let w = [
                                T::from_f64(fmt.env[slot * 4]),
                                T::from_f64(fmt.env[slot * 4 + 1]),
                                T::from_f64(fmt.env[slot * 4 + 2]),
                                T::from_f64(fmt.env[slot * 4 + 3]),
                            ];
                            let g_row = g.row(a * sel_t + k);
                            let dg_row = &mut dg_atom[k * m_w..(k + 1) * m_w];
                            // dG[mi] = Σ_c w[c]*dT1[mi][c] (+ T2 path for mi<m2)
                            for mi in 0..m_w {
                                let mut acc = T::ZERO;
                                for c in 0..4 {
                                    acc += w[c] * dt1[mi * 4 + c];
                                }
                                dg_row[mi] = acc * inv_nm;
                            }
                            for ai in 0..m2 {
                                let mut acc = T::ZERO;
                                for c in 0..4 {
                                    acc += w[c] * dt2[c * m2 + ai];
                                }
                                dg_row[ai] += acc * inv_nm;
                            }
                            // dE/dR̃[c] = Σ_mi g[mi]*dT1[mi][c]
                            //           + Σ_ai dT2[c][ai]*g[ai]
                            for c in 0..4 {
                                let mut acc = T::ZERO;
                                for (mi, &gm) in g_row.iter().enumerate() {
                                    acc += gm * dt1[mi * 4 + c];
                                }
                                for ai in 0..m2 {
                                    acc += dt2[c * m2 + ai] * g_row[ai];
                                }
                                denv_atom[k * 4 + c] = (acc * inv_nm).to_f64();
                            }
                        }
                    });
            }
        });
        drop(desc_bwd_span);

        // ---- 6. embedding backward: dE/ds per slot ----
        let emb_bwd_span = dp_obs::span("embedding_backward");
        let mut ds_cols: Vec<Matrix<T>> = Vec::with_capacity(n_types);
        for t in 0..n_types {
            let ds = net_backward_profiled(&model.embeddings[t], &g_caches[t], &dg_mats[t], prof);
            ds_cols.push(ds);
        }
        drop(emb_bwd_span);

        // ---- 7/8. ProdForce + ProdVirial (custom ops, f64) ----
        maybe_time(prof, Kernel::Custom, || {
            // per-slot total gradient dE/dd (parallel), then scatter (serial)
            let force_span = dp_obs::span("prod_force");
            let slot_grads: Vec<[f64; 3]> = (0..nc * nm)
                .into_par_iter()
                .map(|local_slot| {
                    let a = local_slot / nm;
                    let within = local_slot % nm;
                    let atom = chunk_start + a;
                    let slot = atom * nm + within;
                    if fmt.indices[slot] == NONE {
                        return [0.0; 3];
                    }
                    // which type block is this slot in?
                    let t = block_off[1..=n_types]
                        .iter()
                        .position(|&end| within < end)
                        .expect("slot outside type blocks");
                    let k = within - block_off[t];
                    let ds = ds_cols[t][(a * cfg.sel[t] + k, 0)].to_f64();
                    let base = (a * cfg.sel[t] + k) * 4;
                    let denv_atom = &denv_blocks[t];
                    let gw = [
                        denv_atom[base] + ds,
                        denv_atom[base + 1],
                        denv_atom[base + 2],
                        denv_atom[base + 3],
                    ];
                    let jac = &fmt.denv[slot * 12..slot * 12 + 12];
                    let mut g = [0.0; 3];
                    for kk in 0..3 {
                        g[kk] = gw[0] * jac[kk]
                            + gw[1] * jac[3 + kk]
                            + gw[2] * jac[6 + kk]
                            + gw[3] * jac[9 + kk];
                    }
                    g
                })
                .collect();
            drop(force_span);
            let _virial_span = dp_obs::span("prod_virial");
            for (local_slot, g) in slot_grads.iter().enumerate() {
                let atom = chunk_start + local_slot / nm;
                let slot = atom * nm + local_slot % nm;
                let j = fmt.indices[slot];
                if j == NONE {
                    continue;
                }
                let j = j as usize;
                let d = &fmt.disp[slot * 3..slot * 3 + 3];
                for kk in 0..3 {
                    forces[atom][kk] += g[kk];
                    forces[j][kk] -= g[kk];
                }
                virial[0] -= d[0] * g[0];
                virial[1] -= d[1] * g[1];
                virial[2] -= d[2] * g[2];
                virial[3] -= d[0] * g[1];
                virial[4] -= d[0] * g[2];
                virial[5] -= d[1] * g[2];
            }
        });

        chunk_start = chunk_end;
    }

    let energy = per_atom_energy.iter().sum();
    EvalOutput {
        energy,
        per_atom_energy,
        forces,
        virial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::config::DpConfig;
    use crate::format::format_optimized;
    use dp_md::{lattice, units, NeighborList, System};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_setup() -> (DpModel<f64>, System, FormattedEnv) {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(11);
        let model = DpModel::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        (model, sys, fmt)
    }

    #[test]
    fn energy_is_sum_of_atomic_contributions() {
        let (model, sys, fmt) = test_setup();
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let sum: f64 = out.per_atom_energy.iter().sum();
        assert!((out.energy - sum).abs() < 1e-10);
        assert_eq!(out.per_atom_energy.len(), sys.len());
    }

    #[test]
    fn forces_sum_to_zero() {
        // translation invariance => ΣF = 0
        let (model, sys, fmt) = test_setup();
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let mut total = [0.0; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(total[k].abs() < 1e-9, "net force {total:?}");
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let (model, mut sys, _) = test_setup();
        let cfg = &model.config;
        let compute = |sys: &System| {
            let nl = NeighborList::build(sys, cfg.rcut);
            let fmt = format_optimized(sys, &nl, cfg, Codec::PaperDecimal);
            evaluate(&model, &fmt, &sys.types, sys.len(), None)
        };
        let out = compute(&sys);
        let eps = 1e-6;
        for &i in &[0usize, 13, 50] {
            for k in 0..3 {
                let orig = sys.positions[i][k];
                sys.positions[i][k] = orig + eps;
                let ep = compute(&sys).energy;
                sys.positions[i][k] = orig - eps;
                let em = compute(&sys).energy;
                sys.positions[i][k] = orig;
                let fd = -(ep - em) / (2.0 * eps);
                assert!(
                    (fd - out.forces[i][k]).abs() < 1e-6,
                    "atom {i} dim {k}: fd {fd} vs {}",
                    out.forces[i][k]
                );
            }
        }
    }

    #[test]
    fn e0_shifts_energy_linearly() {
        let (mut model, sys, fmt) = test_setup();
        let out0 = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        model.e0[0] += 1.5;
        let out1 = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let expect = out0.energy + 1.5 * sys.len() as f64;
        assert!((out1.energy - expect).abs() < 1e-9);
        // forces unchanged
        for (a, b) in out0.forces.iter().zip(&out1.forces) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn profiled_forward_matches_plain() {
        let (model, sys, fmt) = test_setup();
        let prof = Profiler::new();
        let a = evaluate(&model, &fmt, &sys.types, sys.len(), Some(&prof));
        let b = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        assert!((a.energy - b.energy).abs() < 1e-12);
        assert!(prof.grand_total().as_nanos() > 0);
        let pct = prof.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn chunking_is_invisible() {
        // a system larger than one chunk gives identical energies to a
        // manual per-chunk evaluation — i.e. chunk boundaries don't leak
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(12);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [5, 5, 5], units::MASS_CU); // 500 atoms > CHUNK
        sys.perturb(0.05, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        // reference: evaluate per single atom via baseline-like loop is in
        // baseline.rs tests; here check translation invariance + finiteness
        assert!(out.energy.is_finite());
        assert_eq!(out.forces.len(), 500);
        let mut total = [0.0; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(total[k].abs() < 1e-8);
        }
    }
}
