//! Optimized Deep Potential evaluation (§5.2–§5.3).
//!
//! The pipeline mirrors the optimized GPU DeePMD-kit:
//!
//! 1. **Batched embedding**: thanks to the fixed-shape formatted layout,
//!    the `s(r)` inputs of *all* atoms' neighbors of one type form a single
//!    tall column, so each embedding layer is one tall GEMM + one fused
//!    tanh kernel instead of per-atom small ops — the "computational
//!    granularity" innovation of §5.2.1.
//! 2. **Descriptor contraction**: `T1 = Ḡᵀ R̃ / Nm`, `T2 = R̃ᵀ G⁻ / Nm`,
//!    `D = T1 T2`. The fixed-shape layout makes every per-atom problem
//!    identical, so the whole chunk runs as strided batched GEMMs
//!    ([`dp_linalg::batch`], the cuBLAS `gemmStridedBatched` analogue)
//!    instead of per-atom scalar loops; likewise the backward pass.
//! 3. **Batched fitting** per center type, 240-wide residual layers with
//!    fused GEMM+bias and fused tanh+grad.
//! 4. **Backward** through fitting, descriptor and embedding using the
//!    cached tanh gradients (no recomputation, §5.3.3).
//! 5. **ProdForce / ProdVirial** (custom ops): chain `∂E/∂R̃` and the
//!    embedding-input gradient through the geometric Jacobian and scatter
//!    into per-atom forces and the virial.
//!
//! The whole pipeline is generic over precision `T`; the mixed-precision
//! mode (§5.2.3) runs it in `f32` on an environment matrix built in `f64`,
//! converting the per-slot force gradients back to `f64` before
//! accumulation — exactly the paper's conversion points.
//!
//! Atoms are processed in chunks so peak memory stays bounded at paper-size
//! neighbor counts (the GPU code relies on 16 GB device memory instead).

use crate::format::{FormattedEnv, NONE};
use crate::model::DpModel;
use crate::profile::{maybe_time, Kernel, Profiler};
use crate::workspace::{reuse_uninit, reuse_zeroed, EvalWorkspace, NetPass};
use dp_linalg::batch::{gemm_batch_nn, gemm_batch_nt, gemm_batch_tn, Acc, Panel};
use dp_linalg::fused::{dup_sum_fused_into, tanh_fused_into};
use dp_linalg::gemm::{gemm_bias_into, matmul_nt_into};
use dp_linalg::{simd, Matrix, Real};
use dp_nn::layer::LayerKind;
use dp_nn::net::Net;
use rayon::prelude::*;

/// Result of one evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    pub energy: f64,
    pub per_atom_energy: Vec<f64>,
    pub forces: Vec<[f64; 3]>,
    pub virial: [f64; 6],
}

/// Upper bound on atoms per pipeline chunk.
pub const CHUNK: usize = 256;

/// Atoms per pipeline chunk: targets ~32k embedding rows per neighbor
/// type so the GEMMs stay tall while activation memory stays bounded even
/// at the paper's sel=500 copper setting.
pub fn chunk_size(max_sel: usize) -> usize {
    (32_768 / max_sel.max(1)).clamp(16, CHUNK)
}

/// Profiled re-implementation of `Net::forward_cached` writing into the
/// workspace's [`NetPass`] buffers (no allocation in steady state),
/// attributing GEMM and activation time to their Fig 3 categories. Kept in
/// lockstep with `dp_nn::Layer::forward` (equivalence is tested). The final
/// activation lands in `pass.out`; cached tanh gradients in `pass.tgrads`.
fn net_forward_into<T: Real>(
    net: &Net<T>,
    x: &Matrix<T>,
    pass: &mut NetPass<T>,
    prof: Option<&Profiler>,
) {
    pass.ensure_layers(net.layers.len());
    let NetPass {
        out,
        tgrads,
        pre,
        act,
        skip,
    } = pass;
    out.copy_from(x);
    for (li, l) in net.layers.iter().enumerate() {
        maybe_time(prof, Kernel::Gemm, || gemm_bias_into(out, &l.w, &l.b, pre));
        match l.kind {
            LayerKind::Linear => {
                tgrads[li].reuse_shape(0, 0);
                std::mem::swap(out, pre);
            }
            LayerKind::Plain => {
                maybe_time(prof, Kernel::Tanh, || {
                    tanh_fused_into(pre, act, &mut tgrads[li])
                });
                std::mem::swap(out, act);
            }
            LayerKind::Growth => {
                maybe_time(prof, Kernel::Tanh, || {
                    tanh_fused_into(pre, act, &mut tgrads[li])
                });
                maybe_time(prof, Kernel::Other, || dup_sum_fused_into(out, act, skip));
                std::mem::swap(out, skip);
            }
            LayerKind::Residual => {
                maybe_time(prof, Kernel::Tanh, || {
                    tanh_fused_into(pre, act, &mut tgrads[li])
                });
                act.axpy(T::ONE, out);
                std::mem::swap(out, act);
            }
        }
    }
}

/// Profiled `Net::backward_input` (same taxonomy) using the tanh gradients
/// cached by [`net_forward_into`]. The input gradient lands in `g`; `sa`
/// and `sb` are ping-pong scratch.
fn net_backward_into<T: Real>(
    net: &Net<T>,
    tgrads: &[Matrix<T>],
    dy: &Matrix<T>,
    g: &mut Matrix<T>,
    sa: &mut Matrix<T>,
    sb: &mut Matrix<T>,
    prof: Option<&Profiler>,
) {
    g.copy_from(dy);
    for (l, c) in net.layers.iter().zip(&tgrads[..net.layers.len()]).rev() {
        match l.kind {
            LayerKind::Linear => {
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(g, &l.w, sa));
                std::mem::swap(g, sa);
            }
            LayerKind::Plain => {
                maybe_time(prof, Kernel::Tanh, || g.hadamard_assign(c));
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(g, &l.w, sa));
                std::mem::swap(g, sa);
            }
            LayerKind::Residual => {
                maybe_time(prof, Kernel::Tanh, || {
                    sa.copy_from(g);
                    sa.hadamard_assign(c);
                });
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(sa, &l.w, sb));
                sb.axpy(T::ONE, g);
                std::mem::swap(g, sb);
            }
            LayerKind::Growth => {
                maybe_time(prof, Kernel::Tanh, || {
                    sa.copy_from(g);
                    sa.hadamard_assign(c);
                });
                maybe_time(prof, Kernel::Gemm, || matmul_nt_into(sa, &l.w, sb));
                let k = l.w.rows();
                for i in 0..g.rows() {
                    let g_row = g.row(i);
                    let dx_row = sb.row_mut(i);
                    for j in 0..k {
                        dx_row[j] += g_row[j] + g_row[j + k];
                    }
                }
                std::mem::swap(g, sb);
            }
        }
    }
}

/// Evaluate energy, forces and virial for the formatted environment.
///
/// `types` are the species of the `fmt.n_atoms` local atoms; `n_total`
/// includes ghosts (forces on ghosts are accumulated for the reverse
/// communication pass of the parallel driver).
///
/// Convenience wrapper over [`evaluate_into`] that allocates a fresh
/// workspace and output per call.
pub fn evaluate<T: Real>(
    model: &DpModel<T>,
    fmt: &FormattedEnv,
    types: &[usize],
    n_total: usize,
    prof: Option<&Profiler>,
) -> EvalOutput {
    let mut ws = EvalWorkspace::new(&model.config);
    let mut out = EvalOutput {
        energy: 0.0,
        per_atom_energy: Vec::new(),
        forces: Vec::new(),
        virial: [0.0; 6],
    };
    evaluate_into(model, fmt, types, n_total, prof, &mut ws, &mut out);
    out
}

/// [`evaluate`] into caller-provided workspace and output buffers — the
/// §5.2.2 "trunk of memory" hot path. After a few warm-up calls at a fixed
/// problem size this performs zero heap allocations; results are identical
/// to [`evaluate`] regardless of what the workspace previously held.
pub fn evaluate_into<T: Real>(
    model: &DpModel<T>,
    fmt: &FormattedEnv,
    types: &[usize],
    n_total: usize,
    prof: Option<&Profiler>,
    ws: &mut EvalWorkspace<T>,
    out: &mut EvalOutput,
) {
    assert_eq!(types.len(), fmt.n_atoms);
    assert!(n_total >= fmt.n_atoms);
    let cfg = &model.config;
    let n_types = cfg.n_types();
    let m_w = cfg.emb_width();
    let m2 = cfg.axis_neurons;
    let d_in = cfg.descriptor_dim();
    let nm = fmt.nm;
    let inv_nm = T::from_f64(1.0 / nm as f64);

    // Grow per-type slots if the workspace was built for a smaller model.
    while ws.emb_passes.len() < n_types {
        ws.emb_passes.push(NetPass::default());
    }
    while ws.dg_mats.len() < n_types {
        ws.dg_mats.push(Matrix::zeros(0, 0));
    }
    while ws.ds_cols.len() < n_types {
        ws.ds_cols.push(Matrix::zeros(0, 0));
    }
    while ws.denv_blocks.len() < n_types {
        ws.denv_blocks.push(Vec::new());
    }
    while ws.envm.len() < n_types {
        ws.envm.push(Vec::new());
    }
    while ws.by_type.len() < n_types {
        ws.by_type.push(Vec::new());
    }

    let EvalWorkspace {
        emb_passes,
        fit_pass,
        bwd_g,
        bwd_a,
        bwd_b,
        s_col,
        fit_x,
        ones,
        dg_mats,
        ds_cols,
        denv_blocks,
        desc,
        t1,
        t2,
        dt1,
        dt2,
        d_desc,
        denv_t,
        envm,
        by_type,
        block_off,
        slot_grads,
    } = ws;

    let EvalOutput {
        energy,
        per_atom_energy,
        forces,
        virial,
    } = out;
    reuse_zeroed(per_atom_energy, fmt.n_atoms, 0.0);
    reuse_zeroed(forces, n_total, [0.0; 3]);
    *virial = [0.0; 6];

    // type-block offsets within an atom's slot range
    reuse_uninit(block_off, n_types + 1, 0);
    block_off[0] = 0;
    for t in 0..n_types {
        block_off[t + 1] = block_off[t] + cfg.sel[t];
    }

    let chunk = chunk_size(cfg.sel.iter().copied().max().unwrap_or(1));
    let mut chunk_start = 0usize;
    while chunk_start < fmt.n_atoms {
        let chunk_end = (chunk_start + chunk).min(fmt.n_atoms);
        let nc = chunk_end - chunk_start;

        // ---- 1. batched embedding per neighbor type ----
        let emb_span = dp_obs::span("embedding_gemm");
        for t in 0..n_types {
            let rows = nc * cfg.sel[t];
            maybe_time(prof, Kernel::Slice, || {
                // gather the type block once in evaluation precision; it
                // doubles as the R̃ operand of the batched descriptor
                // GEMMs in stages 2 and 5
                reuse_uninit(&mut envm[t], rows * 4, T::ZERO);
                fmt.gather_env_block(chunk_start, nc, t, &mut envm[t]);
                s_col.reuse_shape(rows, 1);
                let data = s_col.as_mut_slice();
                let e = &envm[t];
                for i in 0..rows {
                    data[i] = e[i * 4];
                }
            });
            net_forward_into(&model.embeddings[t], s_col, &mut emb_passes[t], prof);
        }
        drop(emb_span);

        // ---- 2. descriptor contraction (batched GEMMs) ----
        // T1 = ḠᵀR̃/Nm, T2 = R̃ᵀG⁻/Nm, D = T1·T2 for the whole chunk at
        // once: the fixed-shape layout makes every per-atom problem
        // identical, so each contraction is one strided batched GEMM per
        // neighbor type. Padded slots have all-zero R̃ rows and
        // contribute exact zeros — no per-slot branching remains.
        let desc_span = dp_obs::span("descriptor");
        reuse_zeroed(t1, nc * m_w * 4, T::ZERO);
        reuse_zeroed(t2, nc * 4 * m2, T::ZERO);
        reuse_uninit(desc, nc * m_w * m2, T::ZERO);
        maybe_time(prof, Kernel::Custom, || {
            for t in 0..n_types {
                let sel_t = cfg.sel[t];
                if sel_t == 0 {
                    continue;
                }
                let g = emb_passes[t].out.as_slice();
                let e = envm[t].as_slice();
                let pg = Panel { ld: m_w, stride: sel_t * m_w };
                let pe = Panel { ld: 4, stride: sel_t * 4 };
                // T1 += Ḡᵀ × R̃ (A stored sel_t×m_w, read with column stride)
                gemm_batch_tn(
                    nc, m_w, sel_t, 4, T::ONE,
                    g, pg,
                    e, pe,
                    t1, Panel { ld: 4, stride: m_w * 4 },
                    Acc::Add,
                );
                // T2 += R̃ᵀ × G⁻ (the m2-column prefix of the m_w-wide G)
                gemm_batch_tn(
                    nc, 4, sel_t, m2, T::ONE,
                    e, pe,
                    g, pg,
                    t2, Panel { ld: m2, stride: 4 * m2 },
                    Acc::Add,
                );
            }
            simd::scale(t1, inv_nm);
            simd::scale(t2, inv_nm);
            // D = T1 (m_w × 4) × T2 (4 × m2) per atom
            gemm_batch_nn(
                nc, m_w, 4, m2, T::ONE,
                t1, Panel { ld: 4, stride: m_w * 4 },
                t2, Panel { ld: m2, stride: 4 * m2 },
                desc, Panel { ld: m2, stride: m_w * m2 },
                Acc::Overwrite,
            );
        });
        drop(desc_span);

        // ---- 3. batched fitting per center type ----
        let fit_span = dp_obs::span("fitting_net");
        // gather chunk atoms by type
        for v in by_type.iter_mut() {
            v.clear();
        }
        for a in 0..nc {
            by_type[types[chunk_start + a]].push(a);
        }
        // dE/dD per atom (filled from fitting backward; every chunk atom
        // belongs to exactly one center type, so every row is written)
        reuse_uninit(d_desc, nc * d_in, T::ZERO);
        for t in 0..n_types {
            if by_type[t].is_empty() {
                continue;
            }
            let rows = by_type[t].len();
            maybe_time(prof, Kernel::Slice, || {
                fit_x.reuse_shape(rows, d_in);
                for (r, &a) in by_type[t].iter().enumerate() {
                    fit_x
                        .row_mut(r)
                        .copy_from_slice(&desc[a * d_in..(a + 1) * d_in]);
                }
            });
            net_forward_into(&model.fittings[t], fit_x, fit_pass, prof);
            for (r, &a) in by_type[t].iter().enumerate() {
                per_atom_energy[chunk_start + a] = fit_pass.out[(r, 0)].to_f64() + model.e0[t];
            }
            // ---- 4. fitting backward: dE/dD ----
            ones.reuse_shape(rows, 1);
            ones.as_mut_slice().fill(T::ONE);
            net_backward_into(
                &model.fittings[t],
                &fit_pass.tgrads,
                ones,
                bwd_g,
                bwd_a,
                bwd_b,
                prof,
            );
            maybe_time(prof, Kernel::Slice, || {
                for (r, &a) in by_type[t].iter().enumerate() {
                    d_desc[a * d_in..(a + 1) * d_in].copy_from_slice(bwd_g.row(r));
                }
            });
        }
        drop(fit_span);

        // ---- 5. descriptor backward (batched GEMMs) ----
        let desc_bwd_span = dp_obs::span("descriptor_backward");
        // dT1 = dD×T2ᵀ and dT2 = T1ᵀ×dD depend only on per-atom data, so
        // they are computed ONCE per chunk — the earlier revision
        // recomputed them identically inside every neighbor-type pass.
        reuse_uninit(dt1, nc * m_w * 4, T::ZERO);
        reuse_uninit(dt2, nc * 4 * m2, T::ZERO);
        maybe_time(prof, Kernel::Custom, || {
            let pd = Panel { ld: m2, stride: m_w * m2 };
            let p1 = Panel { ld: 4, stride: m_w * 4 };
            let p2 = Panel { ld: m2, stride: 4 * m2 };
            gemm_batch_nt(
                nc, m_w, m2, 4, T::ONE,
                d_desc, pd,
                t2, p2,
                dt1, p1,
                Acc::Overwrite,
            );
            gemm_batch_tn(
                nc, 4, m_w, m2, T::ONE,
                t1, p1,
                d_desc, pd,
                dt2, p2,
                Acc::Overwrite,
            );
            for t in 0..n_types {
                let sel_t = cfg.sel[t];
                dg_mats[t].reuse_shape(nc * sel_t, m_w);
                reuse_uninit(&mut denv_blocks[t], nc * sel_t * 4, 0.0);
                if sel_t == 0 {
                    continue;
                }
                let e = envm[t].as_slice();
                let g = emb_passes[t].out.as_slice();
                let pe = Panel { ld: 4, stride: sel_t * 4 };
                let pg = Panel { ld: m_w, stride: sel_t * m_w };
                // dG = (R̃ × dT1ᵀ + R̃ × dT2 on the m2 prefix) / Nm.
                // Padded slots have zero R̃ rows, so their dG rows come
                // out zero exactly as the old slot-skipping loop left
                // them.
                gemm_batch_nt(
                    nc, sel_t, 4, m_w, inv_nm,
                    e, pe,
                    dt1, p1,
                    dg_mats[t].as_mut_slice(), pg,
                    Acc::Overwrite,
                );
                gemm_batch_nn(
                    nc, sel_t, 4, m2, inv_nm,
                    e, pe,
                    dt2, p2,
                    dg_mats[t].as_mut_slice(), pg,
                    Acc::Add,
                );
                // dE/dR̃ = (G × dT1 + G⁻ × dT2ᵀ) / Nm, in evaluation
                // precision, then converted once to f64 for ProdForce.
                // Padded slots get nonzero values here (their G rows are
                // not zero) but ProdForce never reads NONE slots.
                reuse_uninit(denv_t, nc * sel_t * 4, T::ZERO);
                gemm_batch_nn(
                    nc, sel_t, m_w, 4, inv_nm,
                    g, pg,
                    dt1, p1,
                    denv_t, pe,
                    Acc::Overwrite,
                );
                gemm_batch_nt(
                    nc, sel_t, m2, 4, inv_nm,
                    g, pg,
                    dt2, p2,
                    denv_t, pe,
                    Acc::Add,
                );
                for (d, &s) in denv_blocks[t].iter_mut().zip(denv_t.iter()) {
                    *d = s.to_f64();
                }
            }
        });
        drop(desc_bwd_span);

        // ---- 6. embedding backward: dE/ds per slot ----
        let emb_bwd_span = dp_obs::span("embedding_backward");
        for t in 0..n_types {
            net_backward_into(
                &model.embeddings[t],
                &emb_passes[t].tgrads,
                &dg_mats[t],
                bwd_g,
                bwd_a,
                bwd_b,
                prof,
            );
            std::mem::swap(bwd_g, &mut ds_cols[t]);
        }
        drop(emb_bwd_span);

        // ---- 7/8. ProdForce + ProdVirial (custom ops, f64) ----
        reuse_uninit(slot_grads, nc * nm, [0.0; 3]);
        maybe_time(prof, Kernel::Custom, || {
            // per-slot total gradient dE/dd (parallel), then scatter (serial)
            let force_span = dp_obs::span("prod_force");
            let ds_cols = &*ds_cols;
            let denv_blocks = &*denv_blocks;
            let block_off = &*block_off;
            slot_grads.par_chunks_mut(nm).enumerate().for_each(|(a, sg)| {
                let atom = chunk_start + a;
                for (within, out_g) in sg.iter_mut().enumerate() {
                    let slot = atom * nm + within;
                    if fmt.indices[slot] == NONE {
                        *out_g = [0.0; 3];
                        continue;
                    }
                    // which type block is this slot in?
                    let t = block_off[1..=n_types]
                        .iter()
                        .position(|&end| within < end)
                        .expect("slot outside type blocks");
                    let k = within - block_off[t];
                    let ds = ds_cols[t][(a * cfg.sel[t] + k, 0)].to_f64();
                    let base = (a * cfg.sel[t] + k) * 4;
                    let denv_atom = &denv_blocks[t];
                    let gw = [
                        denv_atom[base] + ds,
                        denv_atom[base + 1],
                        denv_atom[base + 2],
                        denv_atom[base + 3],
                    ];
                    let jac = &fmt.denv[slot * 12..slot * 12 + 12];
                    let mut g = [0.0; 3];
                    for kk in 0..3 {
                        g[kk] = gw[0] * jac[kk]
                            + gw[1] * jac[3 + kk]
                            + gw[2] * jac[6 + kk]
                            + gw[3] * jac[9 + kk];
                    }
                    *out_g = g;
                }
            });
            drop(force_span);
            let _virial_span = dp_obs::span("prod_virial");
            for (local_slot, g) in slot_grads.iter().enumerate() {
                let atom = chunk_start + local_slot / nm;
                let slot = atom * nm + local_slot % nm;
                let j = fmt.indices[slot];
                if j == NONE {
                    continue;
                }
                let j = j as usize;
                let d = &fmt.disp[slot * 3..slot * 3 + 3];
                for kk in 0..3 {
                    forces[atom][kk] += g[kk];
                    forces[j][kk] -= g[kk];
                }
                virial[0] -= d[0] * g[0];
                virial[1] -= d[1] * g[1];
                virial[2] -= d[2] * g[2];
                virial[3] -= d[0] * g[1];
                virial[4] -= d[0] * g[2];
                virial[5] -= d[1] * g[2];
            }
        });

        chunk_start = chunk_end;
    }

    *energy = per_atom_energy.iter().sum();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::config::DpConfig;
    use crate::format::format_optimized;
    use dp_md::{lattice, units, NeighborList, System};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_setup() -> (DpModel<f64>, System, FormattedEnv) {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(11);
        let model = DpModel::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        (model, sys, fmt)
    }

    #[test]
    fn energy_is_sum_of_atomic_contributions() {
        let (model, sys, fmt) = test_setup();
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let sum: f64 = out.per_atom_energy.iter().sum();
        assert!((out.energy - sum).abs() < 1e-10);
        assert_eq!(out.per_atom_energy.len(), sys.len());
    }

    #[test]
    fn forces_sum_to_zero() {
        // translation invariance => ΣF = 0
        let (model, sys, fmt) = test_setup();
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let mut total = [0.0; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(total[k].abs() < 1e-9, "net force {total:?}");
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let (model, mut sys, _) = test_setup();
        let cfg = &model.config;
        let compute = |sys: &System| {
            let nl = NeighborList::build(sys, cfg.rcut);
            let fmt = format_optimized(sys, &nl, cfg, Codec::PaperDecimal);
            evaluate(&model, &fmt, &sys.types, sys.len(), None)
        };
        let out = compute(&sys);
        let eps = 1e-6;
        for &i in &[0usize, 13, 50] {
            for k in 0..3 {
                let orig = sys.positions[i][k];
                sys.positions[i][k] = orig + eps;
                let ep = compute(&sys).energy;
                sys.positions[i][k] = orig - eps;
                let em = compute(&sys).energy;
                sys.positions[i][k] = orig;
                let fd = -(ep - em) / (2.0 * eps);
                assert!(
                    (fd - out.forces[i][k]).abs() < 1e-6,
                    "atom {i} dim {k}: fd {fd} vs {}",
                    out.forces[i][k]
                );
            }
        }
    }

    #[test]
    fn e0_shifts_energy_linearly() {
        let (mut model, sys, fmt) = test_setup();
        let out0 = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        model.e0[0] += 1.5;
        let out1 = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let expect = out0.energy + 1.5 * sys.len() as f64;
        assert!((out1.energy - expect).abs() < 1e-9);
        // forces unchanged
        for (a, b) in out0.forces.iter().zip(&out1.forces) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn profiled_forward_matches_plain() {
        let (model, sys, fmt) = test_setup();
        let prof = Profiler::new();
        let a = evaluate(&model, &fmt, &sys.types, sys.len(), Some(&prof));
        let b = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        assert!((a.energy - b.energy).abs() < 1e-12);
        assert!(prof.grand_total().as_nanos() > 0);
        let pct = prof.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn chunking_is_invisible() {
        // a system larger than one chunk gives identical energies to a
        // manual per-chunk evaluation — i.e. chunk boundaries don't leak
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(12);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [5, 5, 5], units::MASS_CU); // 500 atoms > CHUNK
        sys.perturb(0.05, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        // reference: evaluate per single atom via baseline-like loop is in
        // baseline.rs tests; here check translation invariance + finiteness
        assert!(out.energy.is_finite());
        assert_eq!(out.forces.len(), 500);
        let mut total = [0.0; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(total[k].abs() < 1e-8);
        }
    }
}
