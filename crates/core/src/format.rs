//! Neighbor-list formatting: the paper's data-layout innovation (§5.2.1).
//!
//! Each atom's raw neighbor list is sorted by type, then by distance;
//! within each type the neighbors are padded to the cut-off count
//! `sel[type]`. The result is a fixed-shape table — every atom contributes
//! exactly `Nm = Σ sel[t]` rows to the environment matrix, with padded rows
//! zero — so the embedding computation contains *no per-neighbor
//! branching* and can run as a handful of tall GEMMs.
//!
//! Two implementations are kept deliberately:
//! * [`format_optimized`] — compress each neighbor into a `u64` key
//!   ([`crate::codec`]), sort scalars, decode (§5.2.2);
//! * [`format_baseline`] — the AoS struct sort the baseline code used.
//!
//! Both produce identical tables (tested); the Table 3 ablation times them
//! against each other.

use crate::codec::Codec;
use crate::config::DpConfig;
use crate::env::{env_row, smooth_weight};
use dp_md::{NeighborList, System};
use rayon::prelude::*;

/// Slot marker for padding.
pub const NONE: i32 = -1;

/// The formatted, fixed-shape environment of every local atom.
#[derive(Debug, Clone)]
pub struct FormattedEnv {
    pub n_atoms: usize,
    /// Padded per-type widths (copied from the config).
    pub sel: Vec<usize>,
    /// Total slots per atom.
    pub nm: usize,
    /// Neighbor atom index per slot (`NONE` = padding); `n_atoms × nm`.
    pub indices: Vec<i32>,
    /// Environment matrix rows, 4 per slot; `n_atoms × nm × 4`.
    pub env: Vec<f64>,
    /// Jacobian `∂row/∂d`, 12 per slot; `n_atoms × nm × 12` (row-major
    /// `[m][k]`).
    pub denv: Vec<f64>,
    /// Displacement `d = r_j − r_i` per slot; `n_atoms × nm × 3`.
    pub disp: Vec<f64>,
    /// Neighbors dropped because a type exceeded its `sel` capacity
    /// (diagnostic; the sort guarantees the *nearest* are kept).
    pub overflowed: usize,
}

impl FormattedEnv {
    /// Allocate a table for `n_atoms` local atoms — the workspace that
    /// [`format_optimized_into`] reuses across MD steps (§5.2.2).
    pub fn alloc(n_atoms: usize, cfg: &DpConfig) -> Self {
        let nm = cfg.nm();
        Self {
            n_atoms,
            sel: cfg.sel.clone(),
            nm,
            indices: vec![NONE; n_atoms * nm],
            env: vec![0.0; n_atoms * nm * 4],
            denv: vec![0.0; n_atoms * nm * 12],
            disp: vec![0.0; n_atoms * nm * 3],
            overflowed: 0,
        }
    }

    /// Base slot offset of (atom, type) block.
    #[inline]
    pub fn block_start(&self, atom: usize, ty: usize) -> usize {
        let before: usize = self.sel[..ty].iter().sum();
        atom * self.nm + before
    }

    /// Environment row (4 values) of a global slot.
    #[inline]
    pub fn env_of(&self, slot: usize) -> &[f64] {
        &self.env[slot * 4..slot * 4 + 4]
    }

    /// Count of real (non-padding) neighbors.
    pub fn real_neighbors(&self) -> usize {
        self.indices.iter().filter(|&&i| i != NONE).count()
    }

    /// Gather the type-`ty` environment block of `nc` atoms starting at
    /// `chunk_start` into `out` (`nc·sel[ty]` rows × 4, row-major, items
    /// back-to-back), converting to the evaluation precision `T`.
    ///
    /// This is the §5.2.1 payoff: each atom's type block is contiguous in
    /// `env`, so the whole chunk lands as one dense operand for the
    /// strided batched descriptor GEMMs in `eval`. Padded slots carry
    /// all-zero rows (re-zeroed on every format call), so batched kernels
    /// may include them — they contribute exact zeros.
    pub fn gather_env_block<T: dp_linalg::Real>(
        &self,
        chunk_start: usize,
        nc: usize,
        ty: usize,
        out: &mut [T],
    ) {
        let sel_t = self.sel[ty];
        let before: usize = self.sel[..ty].iter().sum();
        assert!(out.len() >= nc * sel_t * 4, "gather output too short");
        for a in 0..nc {
            let src0 = ((chunk_start + a) * self.nm + before) * 4;
            let src = &self.env[src0..src0 + sel_t * 4];
            let dst = &mut out[a * sel_t * 4..(a + 1) * sel_t * 4];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = T::from_f64(s);
            }
        }
    }
}

/// Scratch entry used by both formatters.
#[derive(Clone, Copy)]
struct RawNeighbor {
    ty: u32,
    r: f64,
    j: u32,
    d: [f64; 3],
}

/// Per-thread formatter scratch (raw neighbors, sort keys, type cursors),
/// reused across atoms and steps so the per-atom formatting closure is
/// allocation-free in steady state (§5.2.2).
#[derive(Default)]
struct FmtScratch {
    raw: Vec<RawNeighbor>,
    keys: Vec<u64>,
    sorted: Vec<RawNeighbor>,
    cursor: Vec<usize>,
    limit: Vec<usize>,
}

thread_local! {
    static FMT_SCRATCH: std::cell::RefCell<FmtScratch> =
        std::cell::RefCell::new(FmtScratch::default());
}

fn fill_atom_slots(
    out_indices: &mut [i32],
    out_env: &mut [f64],
    out_denv: &mut [f64],
    out_disp: &mut [f64],
    sel: &[usize],
    sorted: &[RawNeighbor],
    cfg: &DpConfig,
    cursor: &mut Vec<usize>,
    limit: &mut Vec<usize>,
) -> usize {
    let mut overflow = 0usize;
    // type-block cursors; cursor[t] runs from block start to limit[t]
    cursor.clear();
    limit.clear();
    let mut start = 0usize;
    for &s in sel {
        cursor.push(start);
        start += s;
        limit.push(start);
    }
    for n in sorted {
        let t = n.ty as usize;
        if cursor[t] >= limit[t] {
            overflow += 1;
            continue;
        }
        let slot = cursor[t];
        cursor[t] += 1;
        out_indices[slot] = n.j as i32;
        let (s, ds) = smooth_weight(n.r, cfg.rcut_smth, cfg.rcut);
        let (w, dw) = env_row(n.d, n.r, s, ds);
        out_env[slot * 4..slot * 4 + 4].copy_from_slice(&w);
        for m in 0..4 {
            out_denv[slot * 12 + m * 3..slot * 12 + m * 3 + 3].copy_from_slice(&dw[m]);
        }
        out_disp[slot * 3..slot * 3 + 3].copy_from_slice(&n.d);
    }
    overflow
}

fn gather_raw_into(
    raw: &mut Vec<RawNeighbor>,
    sys: &System,
    nl: &NeighborList,
    cfg: &DpConfig,
    i: usize,
) {
    let c2 = cfg.rcut * cfg.rcut;
    raw.clear();
    for &j in nl.neighbors_of(i) {
        let j = j as usize;
        let d = sys.cell.displacement(sys.positions[i], sys.positions[j]);
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        if r2 >= c2 || r2 < 1e-12 {
            continue;
        }
        raw.push(RawNeighbor {
            ty: sys.types[j] as u32,
            r: r2.sqrt(),
            j: j as u32,
            d,
        });
    }
}

/// Optimized formatter: u64-compress, scalar sort, decode (§5.2.2).
pub fn format_optimized(sys: &System, nl: &NeighborList, cfg: &DpConfig, codec: Codec) -> FormattedEnv {
    let mut out = FormattedEnv::alloc(sys.n_local, cfg);
    format_optimized_into(&mut out, sys, nl, cfg, codec);
    out
}

/// In-place variant reusing an existing [`FormattedEnv`]'s buffers — the
/// paper's "allocate a trunk of GPU memory at the initialization stage and
/// re-use it throughout the MD simulation" (§5.2.2). If the atom count
/// changed (migration between domains), the buffers resize in place; in the
/// steady state (same count, same config) no heap allocation occurs.
pub fn format_optimized_into(
    out: &mut FormattedEnv,
    sys: &System,
    nl: &NeighborList,
    cfg: &DpConfig,
    codec: Codec,
) {
    assert!(sys.num_types() <= cfg.n_types(), "model has too few types");
    assert_eq!(out.nm, cfg.nm(), "workspace sized for another config");
    let nm = out.nm;
    if out.n_atoms != sys.n_local {
        out.n_atoms = sys.n_local;
        out.indices.resize(sys.n_local * nm, NONE);
        out.env.resize(sys.n_local * nm * 4, 0.0);
        out.denv.resize(sys.n_local * nm * 12, 0.0);
        out.disp.resize(sys.n_local * nm * 3, 0.0);
    }
    out.sel.clone_from(&cfg.sel);
    let FormattedEnv {
        sel,
        indices,
        env,
        denv,
        disp,
        overflowed,
        ..
    } = out;
    indices.fill(NONE);
    env.fill(0.0);
    denv.fill(0.0);
    disp.fill(0.0);
    let sel: &[usize] = sel;

    let overflow: usize = indices
        .par_chunks_mut(nm)
        .zip(env.par_chunks_mut(nm * 4))
        .zip(denv.par_chunks_mut(nm * 12))
        .zip(disp.par_chunks_mut(nm * 3))
        .enumerate()
        .map(|(i, (((idx, env), denv), disp))| {
            FMT_SCRATCH.with(|cell| {
                let s = &mut *cell.borrow_mut();
                gather_raw_into(&mut s.raw, sys, nl, cfg, i);
                // compress -> sort scalars -> decode
                s.keys.clear();
                s.keys.extend(
                    s.raw
                        .iter()
                        .enumerate()
                        .map(|(k, n)| codec.encode(n.ty as usize, n.r, k)),
                );
                s.keys.sort_unstable();
                s.sorted.clear();
                let raw = &s.raw;
                s.sorted.extend(s.keys.iter().map(|&key| {
                    let (_, _, k) = codec.decode(key);
                    raw[k]
                }));
                fill_atom_slots(
                    idx,
                    env,
                    denv,
                    disp,
                    sel,
                    &s.sorted,
                    cfg,
                    &mut s.cursor,
                    &mut s.limit,
                )
            })
        })
        .sum();
    *overflowed = overflow;
}

/// Baseline formatter: sort an array of structs with a three-field
/// comparator (what the 2018 DeePMD-kit did on the CPU), single-threaded
/// like the baseline.
pub fn format_baseline(sys: &System, nl: &NeighborList, cfg: &DpConfig) -> FormattedEnv {
    assert!(sys.num_types() <= cfg.n_types(), "model has too few types");
    let mut out = FormattedEnv::alloc(sys.n_local, cfg);
    let nm = out.nm;
    let sel = out.sel.clone();
    let mut overflow = 0usize;
    let mut raw: Vec<RawNeighbor> = Vec::new();
    let mut cursor: Vec<usize> = Vec::new();
    let mut limit: Vec<usize> = Vec::new();
    for i in 0..sys.n_local {
        gather_raw_into(&mut raw, sys, nl, cfg, i);
        raw.sort_by(|a, b| {
            a.ty.cmp(&b.ty)
                .then(a.r.partial_cmp(&b.r).unwrap())
                .then(a.j.cmp(&b.j))
        });
        let idx = &mut out.indices[i * nm..(i + 1) * nm];
        let env = &mut out.env[i * nm * 4..(i + 1) * nm * 4];
        let denv = &mut out.denv[i * nm * 12..(i + 1) * nm * 12];
        let disp = &mut out.disp[i * nm * 3..(i + 1) * nm * 3];
        overflow += fill_atom_slots(idx, env, denv, disp, &sel, &raw, cfg, &mut cursor, &mut limit);
    }
    out.overflowed = overflow;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_md::lattice;
    use dp_md::units;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> DpConfig {
        DpConfig::small(1, 4.5, 16)
    }

    fn copper_test_system() -> (System, NeighborList) {
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        let mut rng = StdRng::seed_from_u64(7);
        sys.perturb(0.1, &mut rng);
        let nl = NeighborList::build(&sys, 4.5);
        (sys, nl)
    }

    #[test]
    fn optimized_equals_baseline() {
        let (sys, nl) = copper_test_system();
        let cfg = small_cfg();
        for codec in [Codec::PaperDecimal, Codec::Binary] {
            let a = format_optimized(&sys, &nl, &cfg, codec);
            let b = format_baseline(&sys, &nl, &cfg);
            assert_eq!(a.indices, b.indices, "{codec:?}");
            assert_eq!(a.env, b.env);
            assert_eq!(a.denv, b.denv);
            assert_eq!(a.overflowed, b.overflowed);
        }
    }

    #[test]
    fn slots_sorted_by_distance_within_type() {
        let (sys, nl) = copper_test_system();
        let cfg = small_cfg();
        let f = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        for i in 0..f.n_atoms {
            let mut last_r = 0.0;
            for s in 0..f.nm {
                let slot = i * f.nm + s;
                if f.indices[slot] == NONE {
                    continue;
                }
                let d = &f.disp[slot * 3..slot * 3 + 3];
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                assert!(r >= last_r - 1e-9, "atom {i} slot {s}: {r} < {last_r}");
                last_r = r;
            }
        }
    }

    #[test]
    fn padding_rows_are_zero() {
        let (sys, nl) = copper_test_system();
        let cfg = small_cfg();
        let f = format_optimized(&sys, &nl, &cfg, Codec::Binary);
        for slot in 0..f.n_atoms * f.nm {
            if f.indices[slot] == NONE {
                assert!(f.env[slot * 4..slot * 4 + 4].iter().all(|&x| x == 0.0));
                assert!(f.denv[slot * 12..slot * 12 + 12].iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn overflow_keeps_nearest() {
        // capacity 4 with 12 fcc nearest neighbors: keep the 4 closest
        let sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        let nl = NeighborList::build(&sys, 4.5);
        let mut cfg = small_cfg();
        cfg.sel = vec![4];
        let f = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        assert!(f.overflowed > 0);
        // all kept slots are at the nearest-neighbor distance
        let nn = 3.615 / 2f64.sqrt();
        for s in 0..4 {
            let slot = s; // atom 0
            assert_ne!(f.indices[slot], NONE);
            let d = &f.disp[slot * 3..slot * 3 + 3];
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((r - nn).abs() < 1e-6, "kept non-nearest neighbor at {r}");
        }
    }

    #[test]
    fn two_type_blocks_are_type_pure() {
        let sys = lattice::water_box([4, 4, 4], 3.104);
        let nl = NeighborList::build(&sys, 5.0);
        let cfg = DpConfig {
            rcut: 5.0,
            rcut_smth: 1.0,
            sel: vec![20, 40],
            embedding: vec![4, 8],
            fitting: vec![16, 16],
            axis_neurons: 4,
        };
        let f = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        for i in 0..f.n_atoms {
            for (t, &cap) in cfg.sel.iter().enumerate() {
                let start = f.block_start(i, t);
                for s in 0..cap {
                    let j = f.indices[start + s];
                    if j != NONE {
                        assert_eq!(sys.types[j as usize], t, "type block violated");
                    }
                }
            }
        }
    }

    #[test]
    fn reused_workspace_matches_fresh() {
        let (sys, nl) = copper_test_system();
        let cfg = small_cfg();
        let fresh = format_optimized(&sys, &nl, &cfg, Codec::Binary);
        // dirty workspace from a different geometry, then reuse
        let mut ws = {
            let mut sys2 = sys.clone();
            sys2.positions.swap(0, 5);
            let nl2 = NeighborList::build(&sys2, cfg.rcut);
            format_optimized(&sys2, &nl2, &cfg, Codec::Binary)
        };
        format_optimized_into(&mut ws, &sys, &nl, &cfg, Codec::Binary);
        assert_eq!(ws.indices, fresh.indices);
        assert_eq!(ws.env, fresh.env);
        assert_eq!(ws.denv, fresh.denv);
    }

    #[test]
    fn real_neighbor_count_matches_list() {
        let (sys, nl) = copper_test_system();
        let cfg = small_cfg();
        let f = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        // cfg cutoff equals list cutoff, capacity is ample -> same count
        assert_eq!(f.real_neighbors() + f.overflowed, nl.num_pairs());
    }
}
