//! The smoothed environment weight `s(r)` and per-neighbor environment
//! rows of the DeepPot-SE descriptor.
//!
//! For a neighbor at displacement `d` (center → neighbor), the environment
//! matrix row is `(s, s·x/r, s·y/r, s·z/r)` where `s(r)` is `1/r` smoothly
//! switched to zero between `rcut_smth` and `rcut`. This module also
//! supplies the geometric Jacobian `∂row/∂d` consumed by the ProdForce and
//! ProdVirial operators.

/// `s(r)` and `ds/dr` (DeepPot-SE cosine switch).
#[inline]
pub fn smooth_weight(r: f64, rcut_smth: f64, rcut: f64) -> (f64, f64) {
    debug_assert!(r > 0.0);
    if r >= rcut {
        (0.0, 0.0)
    } else if r <= rcut_smth {
        (1.0 / r, -1.0 / (r * r))
    } else {
        let x = (r - rcut_smth) / (rcut - rcut_smth);
        let u = 0.5 * (std::f64::consts::PI * x).cos() + 0.5;
        let du =
            -0.5 * std::f64::consts::PI * (std::f64::consts::PI * x).sin() / (rcut - rcut_smth);
        (u / r, du / r - u / (r * r))
    }
}

/// Environment row `w = (s, s·d/r)` and its Jacobian `dw[m]/dd[k]`.
#[inline]
pub fn env_row(d: [f64; 3], r: f64, s: f64, ds: f64) -> ([f64; 4], [[f64; 3]; 4]) {
    let inv_r = 1.0 / r;
    let u = [d[0] * inv_r, d[1] * inv_r, d[2] * inv_r]; // unit vector
    let w = [s, s * u[0], s * u[1], s * u[2]];
    let mut dw = [[0.0; 3]; 4];
    // dw0/dd_k = ds * u_k
    for k in 0..3 {
        dw[0][k] = ds * u[k];
    }
    // d(s·u_m)/dd_k = ds·u_k·u_m + s·(δ_mk − u_m·u_k)/r
    for m in 0..3 {
        for k in 0..3 {
            let delta = if m == k { 1.0 } else { 0.0 };
            dw[m + 1][k] = ds * u[k] * u[m] + s * (delta - u[m] * u[k]) * inv_r;
        }
    }
    (w, dw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_inverse_r_inside() {
        let (s, ds) = smooth_weight(2.0, 3.0, 6.0);
        assert!((s - 0.5).abs() < 1e-12);
        assert!((ds + 0.25).abs() < 1e-12);
    }

    #[test]
    fn weight_vanishes_at_cutoff() {
        let (s, ds) = smooth_weight(6.0, 3.0, 6.0);
        assert_eq!(s, 0.0);
        assert_eq!(ds, 0.0);
        // approaching the cutoff from inside: continuous to 0
        let (s, _) = smooth_weight(5.999, 3.0, 6.0);
        assert!(s.abs() < 1e-3);
    }

    #[test]
    fn weight_is_continuous_at_smth() {
        let (s_in, ds_in) = smooth_weight(3.0 - 1e-9, 3.0, 6.0);
        let (s_out, ds_out) = smooth_weight(3.0 + 1e-9, 3.0, 6.0);
        assert!((s_in - s_out).abs() < 1e-8);
        assert!((ds_in - ds_out).abs() < 1e-6);
    }

    #[test]
    fn weight_derivative_matches_fd() {
        for &r in &[1.5, 3.5, 4.7, 5.5] {
            let (_, ds) = smooth_weight(r, 3.0, 6.0);
            let h = 1e-7;
            let fd = (smooth_weight(r + h, 3.0, 6.0).0 - smooth_weight(r - h, 3.0, 6.0).0)
                / (2.0 * h);
            assert!((ds - fd).abs() < 1e-6, "r={r}: {ds} vs {fd}");
        }
    }

    #[test]
    fn env_row_jacobian_matches_fd() {
        let d0: [f64; 3] = [1.2, -0.7, 2.1];
        let rcs = 1.0;
        let rc = 6.0;
        let row_of = |d: [f64; 3]| {
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let (s, ds) = smooth_weight(r, rcs, rc);
            env_row(d, r, s, ds).0
        };
        let r0 = (d0[0] * d0[0] + d0[1] * d0[1] + d0[2] * d0[2]).sqrt();
        let (s0, ds0) = smooth_weight(r0, rcs, rc);
        let (_, dw) = env_row(d0, r0, s0, ds0);
        let h = 1e-7;
        for k in 0..3 {
            let mut dp = d0;
            dp[k] += h;
            let mut dm = d0;
            dm[k] -= h;
            let wp = row_of(dp);
            let wm = row_of(dm);
            for m in 0..4 {
                let fd = (wp[m] - wm[m]) / (2.0 * h);
                assert!(
                    (fd - dw[m][k]).abs() < 1e-6,
                    "m={m} k={k}: fd {fd} vs {}",
                    dw[m][k]
                );
            }
        }
    }

    #[test]
    fn rotation_covariance_of_row() {
        // s-part invariant, vector part rotates with d.
        let d: [f64; 3] = [0.5, 1.0, -0.3];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        let (s, ds) = smooth_weight(r, 1.0, 6.0);
        let (w, _) = env_row(d, r, s, ds);
        // rotate 90° about z: (x,y,z) -> (-y,x,z)
        let dr = [-d[1], d[0], d[2]];
        let (wr, _) = env_row(dr, r, s, ds);
        assert!((w[0] - wr[0]).abs() < 1e-12);
        assert!((wr[1] + w[2]).abs() < 1e-12);
        assert!((wr[2] - w[1]).abs() < 1e-12);
        assert!((wr[3] - w[3]).abs() < 1e-12);
    }
}
