//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a Deep Potential model (the paper's §6.1 settings
/// are provided as constructors).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpConfig {
    /// Interaction cutoff r_c (Å). Water: 6, copper: 8.
    pub rcut: f64,
    /// Smoothing onset r_cs (Å): `s(r) = 1/r` below, switched to 0 at rcut.
    pub rcut_smth: f64,
    /// Cut-off number of neighbors per *neighbor* type (the padding widths
    /// of §5.2.1). Water: {O:46, H:92} summing to 138; copper: {Cu:500}.
    pub sel: Vec<usize>,
    /// Embedding-net widths (paper: 25, 50, 100; must double each step).
    pub embedding: Vec<usize>,
    /// Fitting-net hidden widths (paper: 240, 240, 240).
    pub fitting: Vec<usize>,
    /// Number of "axis" columns M₂ taken from the embedding output for the
    /// second factor of the descriptor (DeePMD-kit default: 4).
    pub axis_neurons: usize,
}

impl DpConfig {
    /// Number of species the model supports.
    pub fn n_types(&self) -> usize {
        self.sel.len()
    }

    /// Total padded neighbor slots per atom, `Nm = Σ_t sel[t]`.
    pub fn nm(&self) -> usize {
        self.sel.iter().sum()
    }

    /// Embedding output width M.
    pub fn emb_width(&self) -> usize {
        *self.embedding.last().expect("embedding sizes empty")
    }

    /// Descriptor dimension `M × M₂` (the fitting-net input width).
    pub fn descriptor_dim(&self) -> usize {
        self.emb_width() * self.axis_neurons
    }

    /// Validate internal consistency.
    pub fn check(&self) {
        assert!(self.rcut > 0.0 && self.rcut_smth > 0.0 && self.rcut_smth < self.rcut);
        assert!(!self.sel.is_empty(), "need at least one type");
        assert!(self.sel.iter().all(|&s| s > 0));
        assert!(!self.embedding.is_empty() && !self.fitting.is_empty());
        assert!(self.axis_neurons > 0 && self.axis_neurons <= self.emb_width());
        for w in self.embedding.windows(2) {
            assert_eq!(w[1], 2 * w[0], "embedding widths must double");
        }
    }

    /// The paper's water model: r_c = 6 Å, 138 total neighbor slots
    /// (O: 46, H: 92 — one third oxygens as in H₂O stoichiometry),
    /// embedding 25×50×100, fitting 240×240×240 (§6.1).
    pub fn water_paper() -> Self {
        Self {
            rcut: 6.0,
            rcut_smth: 0.5,
            sel: vec![46, 92],
            embedding: vec![25, 50, 100],
            fitting: vec![240, 240, 240],
            axis_neurons: 4,
        }
    }

    /// The paper's copper model: r_c = 8 Å, 500 neighbor slots (§6.1).
    pub fn copper_paper() -> Self {
        Self {
            rcut: 8.0,
            rcut_smth: 2.0,
            sel: vec![500],
            embedding: vec![25, 50, 100],
            fitting: vec![240, 240, 240],
            axis_neurons: 4,
        }
    }

    /// A compact single-species model for tests and laptop-scale training:
    /// same architecture shape, smaller widths.
    pub fn small(n_types: usize, rcut: f64, sel_per_type: usize) -> Self {
        Self {
            rcut,
            rcut_smth: rcut * 0.25,
            sel: vec![sel_per_type; n_types],
            embedding: vec![8, 16],
            fitting: vec![32, 32],
            axis_neurons: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_consistent() {
        DpConfig::water_paper().check();
        DpConfig::copper_paper().check();
        assert_eq!(DpConfig::water_paper().nm(), 138);
        assert_eq!(DpConfig::copper_paper().nm(), 500);
        assert_eq!(DpConfig::water_paper().descriptor_dim(), 400);
    }

    #[test]
    fn small_config() {
        let c = DpConfig::small(2, 5.0, 20);
        c.check();
        assert_eq!(c.n_types(), 2);
        assert_eq!(c.nm(), 40);
        assert_eq!(c.emb_width(), 16);
    }

    #[test]
    #[should_panic(expected = "embedding widths must double")]
    fn bad_embedding_widths() {
        let mut c = DpConfig::small(1, 5.0, 10);
        c.embedding = vec![8, 20];
        c.check();
    }

    #[test]
    fn serde_roundtrip() {
        let c = DpConfig::water_paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: DpConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sel, c.sel);
        assert_eq!(back.rcut, c.rcut);
    }
}
