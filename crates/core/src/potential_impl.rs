//! [`DeepPotential`]: the `dp_md::Potential` implementation with the
//! paper's precision modes (§5.2.3).

use crate::codec::Codec;
use crate::eval::{evaluate_into, EvalOutput};
use crate::format::{format_optimized_into, FormattedEnv};
use crate::model::DpModel;
use crate::profile::Profiler;
use crate::workspace::EvalWorkspace;
use dp_linalg::real::truncate_to_f16;
use dp_md::{NeighborList, Potential, PotentialOutput, System};
use std::sync::{Arc, Mutex};

/// Numerical precision of the network evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionMode {
    /// Everything in f64.
    Double,
    /// Networks in f32, geometry and accumulation in f64 — the paper's
    /// production mode (~1.5× faster, half the memory, no observable loss).
    Mixed,
    /// Networks in f32 with weights and inputs rounded to fp16 resolution —
    /// emulates the half-precision experiment the paper *rejects* because
    /// 16-bit range cannot preserve energy/force accuracy.
    HalfEmulated,
}

/// One caller's complete evaluation arena (§5.2.2 "trunk of memory"):
/// the formatted environment, the precision-specific eval workspaces, and
/// the raw evaluation output. Boxed so pool pushes move a pointer.
/// Each precision mode owns its trunk — `HalfEmulated` gets `ws16`
/// rather than borrowing `ws32`, so a server alternating modes never
/// re-warms another mode's buffers.
struct DpScratch {
    fmt: FormattedEnv,
    ws64: EvalWorkspace<f64>,
    ws32: EvalWorkspace<f32>,
    ws16: EvalWorkspace<f32>,
    out: EvalOutput,
}

/// One request in a cross-request batch: a standalone configuration
/// (every atom local — `n_local == len`) plus its neighbor list.
pub struct BatchItem<'a> {
    pub sys: &'a System,
    pub nl: &'a NeighborList,
}

/// Per-request result of a batched evaluation, bit-identical to what a
/// solo [`Potential::compute`] of the same system produces (see
/// [`crate::batch`]). The virial is omitted: it is accumulated globally
/// over the joined table and cannot be attributed to one request.
#[derive(Debug, Clone)]
pub struct BatchResult {
    pub energy: f64,
    pub per_atom_energy: Vec<f64>,
    pub forces: Vec<[f64; 3]>,
}

/// Reusable flat output of [`DeepPotential::compute_batch_into`]: all
/// requests' per-atom quantities live in shared buffers addressed through
/// `offsets`, so a caller stepping many replicas every tick (the ensemble
/// engine) copies slices instead of allocating per-request `Vec`s.
#[derive(Debug, Clone, Default)]
pub struct BatchOutput {
    /// Prefix sums: request `k` owns atoms `offsets[k]..offsets[k + 1]`.
    pub offsets: Vec<usize>,
    /// Total energy per request (left-to-right sum of its slice, the same
    /// summation the solo evaluation performs — bit-identical).
    pub energies: Vec<f64>,
    /// Per-atom energies, concatenated in request order.
    pub per_atom_energy: Vec<f64>,
    /// Forces, concatenated in request order.
    pub forces: Vec<[f64; 3]>,
}

impl BatchOutput {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests in the last batch.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// Force slice of request `k`.
    pub fn forces_of(&self, k: usize) -> &[[f64; 3]] {
        &self.forces[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Per-atom-energy slice of request `k`.
    pub fn per_atom_energy_of(&self, k: usize) -> &[f64] {
        &self.per_atom_energy[self.offsets[k]..self.offsets[k + 1]]
    }
}

/// Arena for [`DeepPotential::compute_batch`]: one per-request formatting
/// table, the joined batch table, and the per-mode workspaces.
struct BatchScratch {
    item: FormattedEnv,
    joined: FormattedEnv,
    types: Vec<usize>,
    offsets: Vec<usize>,
    ws64: EvalWorkspace<f64>,
    ws32: EvalWorkspace<f32>,
    ws16: EvalWorkspace<f32>,
    out: EvalOutput,
}

/// A trained Deep Potential usable as an interatomic potential in MD.
pub struct DeepPotential {
    model64: DpModel<f64>,
    model32: DpModel<f32>,
    model16: DpModel<f32>,
    pub mode: PrecisionMode,
    /// Optional Fig 3 profiler shared with the caller.
    pub profiler: Option<Arc<Profiler>>,
    /// Pool of evaluation arenas, popped per `compute` call so `&self`
    /// stays shared while the buffers mutate; concurrent callers each get
    /// (and warm up) their own arena. The lock is held only for the
    /// pop/push, never during evaluation.
    scratch: Mutex<Vec<Box<DpScratch>>>,
    /// Same pooling scheme for the cross-request batch arenas.
    batch_scratch: Mutex<Vec<Box<BatchScratch>>>,
}

impl DeepPotential {
    pub fn new(model: DpModel<f64>, mode: PrecisionMode) -> Self {
        let model32 = model.cast::<f32>();
        let mut model16 = model.clone();
        let trunc: Vec<f64> = model16
            .flat_params()
            .iter()
            .map(|&x| truncate_to_f16(x))
            .collect();
        model16.set_flat_params(&trunc);
        let model16 = model16.cast::<f32>();
        Self {
            model64: model,
            model32,
            model16,
            mode,
            profiler: None,
            scratch: Mutex::new(Vec::new()),
            batch_scratch: Mutex::new(Vec::new()),
        }
    }

    pub fn with_profiler(mut self, prof: Arc<Profiler>) -> Self {
        self.profiler = Some(prof);
        self
    }

    pub fn model(&self) -> &DpModel<f64> {
        &self.model64
    }

    /// Switch precision without re-deriving the reduced models.
    pub fn set_mode(&mut self, mode: PrecisionMode) {
        self.mode = mode;
    }

    fn codec(&self, sys: &System) -> Codec {
        Codec::auto(self.model64.config.n_types(), sys.len(), self.model64.config.rcut)
    }

    /// Evaluate several standalone configurations as ONE forward/backward
    /// pass over their concatenated §5.2.1 tables (see [`crate::batch`]).
    /// Per-request energies and forces are bit-identical to evaluating
    /// each system alone in the same `mode`. The serving scheduler uses
    /// this to coalesce concurrent `/v1/eval` requests.
    pub fn compute_batch(&self, items: &[BatchItem], mode: PrecisionMode) -> Vec<BatchResult> {
        let mut out = BatchOutput::new();
        self.compute_batch_into(items, mode, &mut out);
        (0..items.len())
            .map(|k| BatchResult {
                energy: out.energies[k],
                per_atom_energy: out.per_atom_energy_of(k).to_vec(),
                forces: out.forces_of(k).to_vec(),
            })
            .collect()
    }

    /// [`Self::compute_batch`] writing into a caller-owned flat
    /// [`BatchOutput`], so steady-state callers (the multi-replica engine
    /// dispatching one batch per tick) reuse the same buffers every call.
    pub fn compute_batch_into(
        &self,
        items: &[BatchItem],
        mode: PrecisionMode,
        res: &mut BatchOutput,
    ) {
        res.offsets.clear();
        res.offsets.push(0);
        res.energies.clear();
        res.per_atom_energy.clear();
        res.forces.clear();
        if items.is_empty() {
            return;
        }
        for it in items {
            assert_eq!(
                it.sys.n_local,
                it.sys.len(),
                "only standalone configurations (no ghost region) can batch"
            );
        }
        let prof = self.profiler.as_deref();
        let cfg = &self.model64.config;
        let mut sc = self.batch_scratch.lock().unwrap().pop().unwrap_or_else(|| {
            Box::new(BatchScratch {
                item: FormattedEnv::alloc(0, cfg),
                joined: FormattedEnv::alloc(0, cfg),
                types: Vec::new(),
                offsets: Vec::new(),
                ws64: EvalWorkspace::new(cfg),
                ws32: EvalWorkspace::new(&self.model32.config),
                ws16: EvalWorkspace::new(&self.model16.config),
                out: EvalOutput {
                    energy: 0.0,
                    per_atom_energy: Vec::new(),
                    forces: Vec::new(),
                    virial: [0.0; 6],
                },
            })
        });
        crate::batch::reset_joined(&mut sc.joined, cfg);
        sc.types.clear();
        sc.offsets.clear();
        sc.offsets.push(0);
        {
            let _span = dp_obs::span("batch_environment");
            for it in items {
                let off = *sc.offsets.last().unwrap();
                crate::profile::maybe_time(prof, crate::profile::Kernel::Custom, || {
                    format_optimized_into(&mut sc.item, it.sys, it.nl, cfg, self.codec(it.sys));
                });
                crate::batch::append_joined(&mut sc.joined, &sc.item, off);
                sc.types.extend_from_slice(&it.sys.types[..it.sys.n_local]);
                sc.offsets.push(off + it.sys.len());
            }
        }
        let n_total = *sc.offsets.last().unwrap();
        let BatchScratch {
            joined,
            types,
            offsets,
            ws64,
            ws32,
            ws16,
            out,
            ..
        } = &mut *sc;
        match mode {
            PrecisionMode::Double => {
                evaluate_into(&self.model64, joined, types, n_total, prof, ws64, out)
            }
            PrecisionMode::Mixed => {
                evaluate_into(&self.model32, joined, types, n_total, prof, ws32, out)
            }
            PrecisionMode::HalfEmulated => {
                for x in &mut joined.env {
                    *x = truncate_to_f16(*x);
                }
                evaluate_into(&self.model16, joined, types, n_total, prof, ws16, out)
            }
        }
        res.offsets.clone_from(offsets);
        res.per_atom_energy
            .extend_from_slice(&out.per_atom_energy[..n_total]);
        res.forces.extend_from_slice(&out.forces[..n_total]);
        for k in 0..items.len() {
            let (a, b) = (offsets[k], offsets[k + 1]);
            // left-to-right sum over the request's contiguous slice —
            // the same order the solo evaluation uses
            res.energies.push(out.per_atom_energy[a..b].iter().sum());
        }
        self.batch_scratch.lock().unwrap().push(sc);
    }
}

impl Potential for DeepPotential {
    fn compute(&self, sys: &System, nl: &NeighborList) -> PotentialOutput {
        let mut out = PotentialOutput::zeros(0);
        self.compute_into(sys, nl, &mut out);
        out
    }

    fn compute_into(&self, sys: &System, nl: &NeighborList, out: &mut PotentialOutput) {
        let prof = self.profiler.as_deref();
        // Pop an arena; keep the lock only for the pop so concurrent
        // callers never serialize on the evaluation itself.
        let mut sc = self.scratch.lock().unwrap().pop().unwrap_or_else(|| {
            Box::new(DpScratch {
                fmt: FormattedEnv::alloc(0, &self.model64.config),
                ws64: EvalWorkspace::new(&self.model64.config),
                ws32: EvalWorkspace::new(&self.model32.config),
                ws16: EvalWorkspace::new(&self.model16.config),
                out: EvalOutput {
                    energy: 0.0,
                    per_atom_energy: Vec::new(),
                    forces: Vec::new(),
                    virial: [0.0; 6],
                },
            })
        });
        {
            let _span = dp_obs::span("environment");
            crate::profile::maybe_time(prof, crate::profile::Kernel::Custom, || {
                format_optimized_into(&mut sc.fmt, sys, nl, &self.model64.config, self.codec(sys));
            });
        }
        let types = &sys.types[..sys.n_local];
        let DpScratch {
            fmt,
            ws64,
            ws32,
            ws16,
            out: eval_out,
        } = &mut *sc;
        match self.mode {
            PrecisionMode::Double => {
                evaluate_into(&self.model64, fmt, types, sys.len(), prof, ws64, eval_out)
            }
            PrecisionMode::Mixed => {
                evaluate_into(&self.model32, fmt, types, sys.len(), prof, ws32, eval_out)
            }
            PrecisionMode::HalfEmulated => {
                // emulate fp16 storage of the environment matrix as well;
                // truncate in place (the arena env is rebuilt next call)
                for x in &mut fmt.env {
                    *x = truncate_to_f16(*x);
                }
                evaluate_into(&self.model16, fmt, types, sys.len(), prof, ws16, eval_out)
            }
        }
        out.energy = eval_out.energy;
        out.virial = eval_out.virial;
        out.forces.clear();
        out.forces.extend_from_slice(&eval_out.forces);
        self.scratch.lock().unwrap().push(sc);
    }

    fn cutoff(&self) -> f64 {
        self.model64.config.rcut
    }

    fn name(&self) -> &'static str {
        match self.mode {
            PrecisionMode::Double => "deep-potential(double)",
            PrecisionMode::Mixed => "deep-potential(mixed)",
            PrecisionMode::HalfEmulated => "deep-potential(fp16-emulated)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpConfig;
    use dp_md::{lattice, units};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(mode: PrecisionMode) -> (DeepPotential, System) {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(31);
        let model = DpModel::<f64>::new_random(cfg, &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);
        (DeepPotential::new(model, mode), sys)
    }

    #[test]
    fn implements_potential_trait() {
        let (dp, sys) = setup(PrecisionMode::Double);
        let nl = NeighborList::build(&sys, dp.cutoff());
        let out = dp.compute(&sys, &nl);
        assert!(out.energy.is_finite());
        assert_eq!(out.forces.len(), sys.len());
    }

    #[test]
    fn mixed_precision_close_to_double() {
        let (mut dp, sys) = setup(PrecisionMode::Double);
        let nl = NeighborList::build(&sys, dp.cutoff());
        let double = dp.compute(&sys, &nl);
        dp.set_mode(PrecisionMode::Mixed);
        let mixed = dp.compute(&sys, &nl);
        // the paper reports sub-meV/molecule energy and ~0.03 eV/Å force
        // deviations; a small random model should be tighter still
        let de = (double.energy - mixed.energy).abs() / sys.len() as f64;
        assert!(de < 1e-4, "energy deviation {de} eV/atom");
        let mut max_f = 0.0f64;
        for (a, b) in double.forces.iter().zip(&mixed.forces) {
            for k in 0..3 {
                max_f = max_f.max((a[k] - b[k]).abs());
            }
        }
        assert!(max_f < 1e-3, "force deviation {max_f} eV/Å");
    }

    #[test]
    fn half_emulated_is_worse_than_mixed() {
        // reproduces the paper's negative result: fp16 deviates much more
        let (mut dp, sys) = setup(PrecisionMode::Double);
        let nl = NeighborList::build(&sys, dp.cutoff());
        let double = dp.compute(&sys, &nl);
        dp.set_mode(PrecisionMode::Mixed);
        let mixed = dp.compute(&sys, &nl);
        dp.set_mode(PrecisionMode::HalfEmulated);
        let half = dp.compute(&sys, &nl);

        let dev = |o: &dp_md::PotentialOutput| {
            let mut m = 0.0f64;
            for (a, b) in double.forces.iter().zip(&o.forces) {
                for k in 0..3 {
                    m = m.max((a[k] - b[k]).abs());
                }
            }
            m
        };
        let dev_mixed = dev(&mixed);
        let dev_half = dev(&half);
        assert!(
            dev_half > 5.0 * dev_mixed,
            "fp16 dev {dev_half} not clearly worse than mixed {dev_mixed}"
        );
    }

    #[test]
    fn names_reflect_mode() {
        let (mut dp, _) = setup(PrecisionMode::Double);
        assert!(dp.name().contains("double"));
        dp.set_mode(PrecisionMode::Mixed);
        assert!(dp.name().contains("mixed"));
    }
}
