//! Tabulated (compressed) embedding nets — the paper's future-work
//! direction that became DeePMD-kit's "model compression".
//!
//! The embedding net is a function of one scalar `s(r)`, so after training
//! it can be *tabulated*: sample `G(s)` and `dG/ds` on a uniform grid over
//! the reachable range of `s` and replace the three-layer network with a
//! cubic Hermite interpolation per output channel. This removes the
//! embedding GEMMs and every tanh from the MD hot path at a small,
//! controlled accuracy cost.

use crate::model::DpModel;
use dp_linalg::{Matrix, Real};
use dp_nn::net::Net;

/// Cubic-Hermite table of one embedding net: `m` output channels sampled
/// at `n_knots` uniformly spaced `s` values.
#[derive(Clone)]
pub struct EmbeddingTable<T> {
    pub s_min: f64,
    pub s_max: f64,
    n_knots: usize,
    m: usize,
    /// values[k*m + c] = G_c(s_k)
    values: Vec<T>,
    /// derivs[k*m + c] = dG_c/ds (s_k)
    derivs: Vec<T>,
}

impl<T: Real> EmbeddingTable<T> {
    /// Tabulate a trained embedding net over `[s_min, s_max]`.
    ///
    /// `s_max` should be the largest smoothed weight the model can see —
    /// `s(r)` is monotone decreasing, so that is `s(r_min)` for the
    /// shortest physical pair distance (≈ 1/r_min).
    pub fn build(net: &Net<T>, s_min: f64, s_max: f64, n_knots: usize) -> Self {
        assert!(net.in_dim() == 1, "embedding nets take scalar input");
        assert!(n_knots >= 4 && s_max > s_min);
        let m = net.out_dim();
        let mut values = Vec::with_capacity(n_knots * m);
        let mut derivs = Vec::with_capacity(n_knots * m);
        let h = (s_max - s_min) / (n_knots - 1) as f64;
        for k in 0..n_knots {
            let s = s_min + k as f64 * h;
            let x = Matrix::from_vec(1, 1, vec![T::from_f64(s)]);
            let (g, caches) = net.forward_cached(&x);
            values.extend_from_slice(g.as_slice());
            // dG_c/ds via one backward pass per channel would be m passes;
            // instead use the Jacobian-row trick: backward with unit seeds.
            // For a 1-input net, dG/ds is the full Jacobian column, which
            // we get channel-by-channel (m is small: 16–100).
            for c in 0..m {
                let mut dy = Matrix::zeros(1, m);
                dy[(0, c)] = T::ONE;
                let dx = net.backward_input(&caches, &dy);
                derivs.push(dx[(0, 0)]);
            }
        }
        Self {
            s_min,
            s_max,
            n_knots,
            m,
            values,
            derivs,
        }
    }

    pub fn channels(&self) -> usize {
        self.m
    }

    /// Interpolate `G(s)` and `dG/ds` into the provided row buffers.
    /// Inputs outside the table range are clamped to the end knots.
    pub fn eval_into(&self, s: f64, g_out: &mut [T], dg_out: &mut [T]) {
        debug_assert_eq!(g_out.len(), self.m);
        debug_assert_eq!(dg_out.len(), self.m);
        let h = (self.s_max - self.s_min) / (self.n_knots - 1) as f64;
        let x = ((s - self.s_min) / h).clamp(0.0, (self.n_knots - 1) as f64);
        let k = (x as usize).min(self.n_knots - 2);
        let t = T::from_f64(x - k as f64);
        let hh = T::from_f64(h);

        // Hermite basis
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = T::TWO * t3 - T::from_f64(3.0) * t2 + T::ONE;
        let h10 = t3 - T::TWO * t2 + t;
        let h01 = -T::TWO * t3 + T::from_f64(3.0) * t2;
        let h11 = t3 - t2;
        // derivative basis w.r.t. s (chain rule through t = (s-s_k)/h)
        let six = T::from_f64(6.0);
        let d00 = (six * t2 - six * t) / hh;
        let d10 = T::from_f64(3.0) * t2 - T::from_f64(4.0) * t + T::ONE;
        let d01 = (six * t - six * t2) / hh;
        let d11 = T::from_f64(3.0) * t2 - T::TWO * t;

        let v0 = &self.values[k * self.m..(k + 1) * self.m];
        let v1 = &self.values[(k + 1) * self.m..(k + 2) * self.m];
        let m0 = &self.derivs[k * self.m..(k + 1) * self.m];
        let m1 = &self.derivs[(k + 1) * self.m..(k + 2) * self.m];
        for c in 0..self.m {
            g_out[c] = h00 * v0[c] + h10 * hh * m0[c] + h01 * v1[c] + h11 * hh * m1[c];
            dg_out[c] = d00 * v0[c] + d10 * m0[c] + d01 * v1[c] + d11 * m1[c];
        }
    }
}

/// A model with all embedding nets tabulated.
pub struct CompressedModel<T> {
    pub model: DpModel<T>,
    pub tables: Vec<EmbeddingTable<T>>,
}

impl<T: Real> CompressedModel<T> {
    /// Compress a model for geometries whose shortest pair distance is
    /// `r_min` (sets the table's upper `s` bound to `s(r_min) ≈ 1/r_min`).
    pub fn build(model: DpModel<T>, r_min: f64, n_knots: usize) -> Self {
        let s_max = 1.0 / r_min;
        let tables = model
            .embeddings
            .iter()
            .map(|net| EmbeddingTable::build(net, 0.0, s_max, n_knots))
            .collect();
        Self { model, tables }
    }
}

/// Evaluate energy/forces/virial with tabulated embeddings: no embedding
/// GEMMs, no tanh in the hot path. Fitting nets still run as networks.
pub fn evaluate_compressed(
    cm: &CompressedModel<f64>,
    fmt: &crate::format::FormattedEnv,
    types: &[usize],
    n_total: usize,
) -> crate::eval::EvalOutput {
    use crate::format::NONE;
    let model = &cm.model;
    let cfg = &model.config;
    let n_types = cfg.n_types();
    let m_w = cfg.emb_width();
    let m2 = cfg.axis_neurons;
    let nm = fmt.nm;
    let inv_nm = 1.0 / nm as f64;

    let mut block_off = vec![0usize; n_types + 1];
    for t in 0..n_types {
        block_off[t + 1] = block_off[t] + cfg.sel[t];
    }

    let mut per_atom_energy = vec![0.0f64; fmt.n_atoms];
    let mut forces = vec![[0.0f64; 3]; n_total];
    let mut virial = [0.0f64; 6];

    // reusable row buffers
    let mut g_rows = vec![0.0f64; nm * m_w];
    let mut dgds_rows = vec![0.0f64; nm * m_w];

    for atom in 0..fmt.n_atoms {
        // table lookups for all real slots
        for t in 0..n_types {
            for k in 0..cfg.sel[t] {
                let within = block_off[t] + k;
                let slot = atom * nm + within;
                if fmt.indices[slot] == NONE {
                    g_rows[within * m_w..(within + 1) * m_w].fill(0.0);
                    dgds_rows[within * m_w..(within + 1) * m_w].fill(0.0);
                    continue;
                }
                let sv = fmt.env[slot * 4];
                let (gr, dgr) = {
                    let (a, b) = (&mut g_rows, &mut dgds_rows);
                    (
                        &mut a[within * m_w..(within + 1) * m_w],
                        &mut b[within * m_w..(within + 1) * m_w],
                    )
                };
                cm.tables[t].eval_into(sv, gr, dgr);
            }
        }

        // descriptor forward (same math as the optimized path)
        let mut t1 = vec![0.0f64; m_w * 4];
        let mut t2 = vec![0.0f64; 4 * m2];
        for within in 0..nm {
            let slot = atom * nm + within;
            if fmt.indices[slot] == NONE {
                continue;
            }
            let w = &fmt.env[slot * 4..slot * 4 + 4];
            let g = &g_rows[within * m_w..(within + 1) * m_w];
            for (mi, &gm) in g.iter().enumerate() {
                for c in 0..4 {
                    t1[mi * 4 + c] += gm * w[c];
                }
            }
            for c in 0..4 {
                for ai in 0..m2 {
                    t2[c * m2 + ai] += w[c] * g[ai];
                }
            }
        }
        for x in &mut t1 {
            *x *= inv_nm;
        }
        for x in &mut t2 {
            *x *= inv_nm;
        }
        let mut d = vec![0.0f64; m_w * m2];
        for mi in 0..m_w {
            for c in 0..4 {
                let v = t1[mi * 4 + c];
                for ai in 0..m2 {
                    d[mi * m2 + ai] += v * t2[c * m2 + ai];
                }
            }
        }

        // fitting net (still a network)
        let ty = types[atom];
        let d_row = Matrix::from_vec(1, m_w * m2, d);
        let (e, caches) = model.fittings[ty].forward_cached(&d_row);
        per_atom_energy[atom] = e[(0, 0)] + model.e0[ty];
        let ones = Matrix::full(1, 1, 1.0);
        let dd_row = model.fittings[ty].backward_input(&caches, &ones);
        let dd = dd_row.as_slice();

        // descriptor backward
        let mut dt1 = vec![0.0f64; m_w * 4];
        let mut dt2 = vec![0.0f64; 4 * m2];
        for mi in 0..m_w {
            for c in 0..4 {
                let mut acc = 0.0;
                for ai in 0..m2 {
                    acc += dd[mi * m2 + ai] * t2[c * m2 + ai];
                }
                dt1[mi * 4 + c] = acc;
            }
        }
        for c in 0..4 {
            for ai in 0..m2 {
                let mut acc = 0.0;
                for mi in 0..m_w {
                    acc += t1[mi * 4 + c] * dd[mi * m2 + ai];
                }
                dt2[c * m2 + ai] = acc;
            }
        }

        // per-slot force/virial with the table derivative closing ds
        for within in 0..nm {
            let slot = atom * nm + within;
            let j = fmt.indices[slot];
            if j == NONE {
                continue;
            }
            let j = j as usize;
            let w = &fmt.env[slot * 4..slot * 4 + 4];
            let g = &g_rows[within * m_w..(within + 1) * m_w];
            let dgds = &dgds_rows[within * m_w..(within + 1) * m_w];
            // dG rows and dE/dR̃
            let mut dr = [0.0f64; 4];
            let mut ds = 0.0f64;
            for (mi, (&gm, &dgm)) in g.iter().zip(dgds).enumerate() {
                let mut dgrow = 0.0;
                for c in 0..4 {
                    dgrow += w[c] * dt1[mi * 4 + c];
                    dr[c] += gm * dt1[mi * 4 + c];
                }
                if mi < m2 {
                    for c in 0..4 {
                        dgrow += w[c] * dt2[c * m2 + mi];
                    }
                }
                ds += dgrow * inv_nm * dgm;
            }
            // T2 path of dE/dR̃: Σ_ai dT2[c][ai] * g[ai]
            for c in 0..4 {
                let mut acc = 0.0;
                for ai in 0..m2 {
                    acc += dt2[c * m2 + ai] * g[ai];
                }
                dr[c] = dr[c] * inv_nm + acc * inv_nm;
            }
            let gw = [dr[0] + ds, dr[1], dr[2], dr[3]];
            let jac = &fmt.denv[slot * 12..slot * 12 + 12];
            let mut grad = [0.0; 3];
            for kk in 0..3 {
                grad[kk] =
                    gw[0] * jac[kk] + gw[1] * jac[3 + kk] + gw[2] * jac[6 + kk] + gw[3] * jac[9 + kk];
            }
            let dvec = &fmt.disp[slot * 3..slot * 3 + 3];
            for kk in 0..3 {
                forces[atom][kk] += grad[kk];
                forces[j][kk] -= grad[kk];
            }
            virial[0] -= dvec[0] * grad[0];
            virial[1] -= dvec[1] * grad[1];
            virial[2] -= dvec[2] * grad[2];
            virial[3] -= dvec[0] * grad[1];
            virial[4] -= dvec[0] * grad[2];
            virial[5] -= dvec[1] * grad[2];
        }
    }

    crate::eval::EvalOutput {
        energy: per_atom_energy.iter().sum(),
        per_atom_energy,
        forces,
        virial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Net<f64> {
        let mut rng = StdRng::seed_from_u64(5);
        Net::embedding(&[8, 16], &mut rng)
    }

    #[test]
    fn table_matches_net_at_knots() {
        let n = net();
        let table = EmbeddingTable::build(&n, 0.0, 1.0, 64);
        let mut g = vec![0.0; 16];
        let mut dg = vec![0.0; 16];
        for &s in &[0.0, 1.0 / 63.0 * 7.0, 1.0] {
            table.eval_into(s, &mut g, &mut dg);
            let exact = n.forward(&Matrix::from_vec(1, 1, vec![s]));
            for c in 0..16 {
                assert!(
                    (g[c] - exact[(0, c)]).abs() < 1e-12,
                    "knot mismatch at s={s} channel {c}"
                );
            }
        }
    }

    #[test]
    fn table_interpolates_between_knots() {
        let n = net();
        let table = EmbeddingTable::build(&n, 0.0, 1.0, 256);
        let mut g = vec![0.0; 16];
        let mut dg = vec![0.0; 16];
        let mut worst = 0.0f64;
        for i in 0..500 {
            let s = i as f64 / 499.0;
            table.eval_into(s, &mut g, &mut dg);
            let exact = n.forward(&Matrix::from_vec(1, 1, vec![s]));
            for c in 0..16 {
                worst = worst.max((g[c] - exact[(0, c)]).abs());
            }
        }
        assert!(worst < 1e-6, "interpolation error {worst}");
    }

    #[test]
    fn table_derivative_matches_fd() {
        let n = net();
        let table = EmbeddingTable::build(&n, 0.0, 1.0, 256);
        let mut g = vec![0.0; 16];
        let mut dg = vec![0.0; 16];
        let mut gp = vec![0.0; 16];
        let mut gm = vec![0.0; 16];
        let mut scratch = vec![0.0; 16];
        for &s in &[0.1, 0.33, 0.57, 0.9] {
            table.eval_into(s, &mut g, &mut dg);
            let h = 1e-6;
            table.eval_into(s + h, &mut gp, &mut scratch);
            table.eval_into(s - h, &mut gm, &mut scratch);
            for c in 0..16 {
                let fd = (gp[c] - gm[c]) / (2.0 * h);
                assert!(
                    (fd - dg[c]).abs() < 1e-5,
                    "s={s} channel {c}: fd {fd} vs {}",
                    dg[c]
                );
            }
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let n = net();
        let table = EmbeddingTable::build(&n, 0.0, 1.0, 32);
        let mut g1 = vec![0.0; 16];
        let mut g2 = vec![0.0; 16];
        let mut dg = vec![0.0; 16];
        table.eval_into(1.0, &mut g1, &mut dg);
        table.eval_into(5.0, &mut g2, &mut dg);
        assert_eq!(g1, g2);
    }

    #[test]
    fn compressed_eval_matches_exact_eval() {
        use crate::codec::Codec;
        use crate::eval::evaluate;
        use crate::format::format_optimized;
        use dp_md::{lattice, units, NeighborList};

        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(9);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);

        let exact = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let cm = CompressedModel::build(model, 1.0, 1024);
        let fast = evaluate_compressed(&cm, &fmt, &sys.types, sys.len());

        let e_dev = (exact.energy - fast.energy).abs() / sys.len() as f64;
        assert!(e_dev < 1e-6, "energy {} vs {}", exact.energy, fast.energy);
        let mut worst = 0.0f64;
        for (a, b) in exact.forces.iter().zip(&fast.forces) {
            for k in 0..3 {
                worst = worst.max((a[k] - b[k]).abs());
            }
        }
        assert!(worst < 1e-4, "force deviation {worst}");
    }

    #[test]
    fn compressed_error_shrinks_with_knots() {
        use crate::codec::Codec;
        use crate::eval::evaluate;
        use crate::format::format_optimized;
        use dp_md::{lattice, units, NeighborList};

        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(10);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        let exact = evaluate(&model, &fmt, &sys.types, sys.len(), None).energy;

        let err_of = |knots: usize| {
            let cm = CompressedModel::build(model.clone(), 1.0, knots);
            (evaluate_compressed(&cm, &fmt, &sys.types, sys.len()).energy - exact).abs()
        };
        let coarse = err_of(32);
        let fine = err_of(512);
        assert!(
            fine < coarse || fine < 1e-12,
            "refinement did not help: {coarse} -> {fine}"
        );
    }

    #[test]
    fn compressed_model_builds_per_type() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = DpModel::<f64>::new_random(DpConfig::small(2, 5.0, 12), &mut rng);
        let c = CompressedModel::build(model, 0.8, 64);
        assert_eq!(c.tables.len(), 2);
        assert_eq!(c.tables[0].channels(), 16);
    }
}
