//! 64-bit compressed neighbor encoding (§5.2.2).
//!
//! Formatting the neighbor list requires sorting each atom's neighbors
//! first by type, then by distance. The paper replaces the AoS struct sort
//! with a scalar sort by packing `(type, distance, index)` into one
//! unsigned 64-bit integer:
//!
//! > `α(j) × 10¹⁵ + ⌊|r_ij| × 10⁸⌋ × 10⁵ + j` — 4 digits for the atomic
//! > type, 10 digits for the atomic distance, and 5 digits for the atomic
//! > index.
//!
//! "Sorting the compressed neighbor list reduces the number of comparisons
//! by half" — one u64 compare replaces a type compare plus a distance
//! compare — and turns the sort into a flat, branch-free scalar sort.
//!
//! The decimal layout caps the local atom index at 10⁵ and the distance at
//! ~92 Å (1.8×10¹⁹ / 10¹⁵ ≈ 18 type values); both hold on the paper's
//! per-GPU sub-regions and on ours. For serial runs beyond 100k atoms we
//! provide an equivalent *binary* layout (6 type bits / 27 distance bits /
//! 31 index bits) with the same ordering semantics.

/// Packed neighbor key. Ordering = (type, quantized distance, index).
pub type Key = u64;

/// The paper's decimal encoding. Panics (debug) outside its valid ranges:
/// `ty < 10`, `r < 92 Å`, `j < 100_000`.
#[inline]
pub fn encode_paper(ty: usize, r: f64, j: usize) -> Key {
    debug_assert!(ty < 10, "decimal codec supports < 10 types");
    debug_assert!(r >= 0.0 && r < 92.0, "decimal codec distance range");
    debug_assert!(j < 100_000, "decimal codec index range");
    ty as u64 * 1_000_000_000_000_000 + (r * 1.0e8).floor() as u64 * 100_000 + j as u64
}

/// Decode the paper's decimal encoding into (type, distance, index). The
/// distance comes back quantized to 10⁻⁸ Å.
#[inline]
pub fn decode_paper(key: Key) -> (usize, f64, usize) {
    let ty = key / 1_000_000_000_000_000;
    let rest = key % 1_000_000_000_000_000;
    let rq = rest / 100_000;
    let j = rest % 100_000;
    (ty as usize, rq as f64 * 1.0e-8, j as usize)
}

/// Binary-split encoding: 6 bits type (64 types), 27 bits distance
/// (quantized at 2⁻²⁰ Å up to 128 Å), 31 bits index (2.1 G atoms).
#[inline]
pub fn encode_binary(ty: usize, r: f64, j: usize) -> Key {
    debug_assert!(ty < 64);
    debug_assert!((0.0..128.0).contains(&r));
    debug_assert!(j < (1usize << 31));
    let rq = (r * (1u64 << 20) as f64) as u64; // needs 27 bits for r<128
    ((ty as u64) << 58) | (rq << 31) | j as u64
}

/// Decode the binary encoding.
#[inline]
pub fn decode_binary(key: Key) -> (usize, f64, usize) {
    let ty = (key >> 58) as usize;
    let rq = (key >> 31) & ((1u64 << 27) - 1);
    let j = (key & ((1u64 << 31) - 1)) as usize;
    (ty, rq as f64 / (1u64 << 20) as f64, j)
}

/// Which codec a formatting pass should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// The paper's decimal layout (§5.2.2) — exact reproduction.
    PaperDecimal,
    /// Binary layout for systems beyond the decimal ranges.
    Binary,
}

impl Codec {
    /// Pick the decimal codec whenever its ranges allow, mirroring the
    /// paper; fall back to binary otherwise.
    pub fn auto(n_types: usize, n_atoms: usize, rcut: f64) -> Codec {
        if n_types < 10 && n_atoms < 100_000 && rcut < 92.0 {
            Codec::PaperDecimal
        } else {
            Codec::Binary
        }
    }

    #[inline]
    pub fn encode(self, ty: usize, r: f64, j: usize) -> Key {
        match self {
            Codec::PaperDecimal => encode_paper(ty, r, j),
            Codec::Binary => encode_binary(ty, r, j),
        }
    }

    #[inline]
    pub fn decode(self, key: Key) -> (usize, f64, usize) {
        match self {
            Codec::PaperDecimal => decode_paper(key),
            Codec::Binary => decode_binary(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_roundtrip() {
        let key = encode_paper(3, 5.4321, 98_765);
        let (ty, r, j) = decode_paper(key);
        assert_eq!(ty, 3);
        assert_eq!(j, 98_765);
        assert!((r - 5.4321).abs() < 1e-7);
    }

    #[test]
    fn binary_roundtrip() {
        let key = encode_binary(17, 63.25, 2_000_000_000);
        let (ty, r, j) = decode_binary(key);
        assert_eq!(ty, 17);
        assert_eq!(j, 2_000_000_000);
        assert!((r - 63.25).abs() < 2e-6);
    }

    #[test]
    fn ordering_is_type_then_distance_then_index() {
        for codec in [Codec::PaperDecimal, Codec::Binary] {
            // type dominates
            assert!(codec.encode(0, 80.0, 99_000) < codec.encode(1, 0.1, 0));
            // then distance
            assert!(codec.encode(1, 2.0, 99_000) < codec.encode(1, 2.5, 0));
            // then index
            assert!(codec.encode(1, 2.0, 5) < codec.encode(1, 2.0, 6));
        }
    }

    #[test]
    fn sorting_keys_equals_sorting_structs() {
        // the paper's claim: scalar sort gives the same order as the
        // struct comparator (type, then distance, then index)
        let mut structs: Vec<(usize, f64, usize)> = vec![
            (1, 3.0, 4),
            (0, 5.5, 2),
            (1, 2.9, 9),
            (0, 5.5, 1),
            (2, 0.1, 0),
            (0, 0.2, 7),
        ];
        for codec in [Codec::PaperDecimal, Codec::Binary] {
            let mut keys: Vec<Key> = structs
                .iter()
                .map(|&(t, r, j)| codec.encode(t, r, j))
                .collect();
            keys.sort_unstable();
            let decoded: Vec<(usize, usize)> =
                keys.iter().map(|&k| {
                    let (t, _, j) = codec.decode(k);
                    (t, j)
                }).collect();
            structs.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then(a.1.partial_cmp(&b.1).unwrap())
                    .then(a.2.cmp(&b.2))
            });
            let expect: Vec<(usize, usize)> = structs.iter().map(|&(t, _, j)| (t, j)).collect();
            assert_eq!(decoded, expect, "{codec:?}");
        }
    }

    #[test]
    fn auto_selects_decimal_then_binary() {
        assert_eq!(Codec::auto(2, 12_288, 6.0), Codec::PaperDecimal);
        assert_eq!(Codec::auto(2, 500_000, 6.0), Codec::Binary);
        assert_eq!(Codec::auto(12, 1_000, 6.0), Codec::Binary);
    }

    #[test]
    fn distance_quantization_error_bounded() {
        for codec in [Codec::PaperDecimal, Codec::Binary] {
            for i in 0..100 {
                let r = i as f64 * 0.0777;
                let (_, rq, _) = codec.decode(codec.encode(0, r, 0));
                assert!((rq - r).abs() < 2e-6, "{codec:?} r={r} rq={rq}");
            }
        }
    }
}
