//! Deep Potential model parameters.

use crate::config::DpConfig;
use dp_linalg::Real;
use dp_nn::net::{Net, NetWeights};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Deep Potential model in precision `T`: one embedding net per neighbor
/// type (input `s(r)`, output width M) and one fitting net per center type
/// (input the flattened M×M₂ descriptor, output the atomic energy).
#[derive(Clone)]
pub struct DpModel<T> {
    pub config: DpConfig,
    pub embeddings: Vec<Net<T>>,
    pub fittings: Vec<Net<T>>,
    /// Per-center-type energy shift added to the fitting output (eV); set
    /// to the dataset's mean atomic energy before training.
    pub e0: Vec<f64>,
}

/// Serializable model (f64 weights).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpModelData {
    pub config: DpConfig,
    pub embeddings: Vec<NetWeights>,
    pub fittings: Vec<NetWeights>,
    pub e0: Vec<f64>,
}

impl<T: Real> DpModel<T> {
    /// Fresh model with Xavier-initialized weights.
    pub fn new_random(config: DpConfig, rng: &mut impl Rng) -> Self {
        config.check();
        let n_types = config.n_types();
        let embeddings = (0..n_types)
            .map(|_| Net::embedding(&config.embedding, rng))
            .collect();
        let fittings = (0..n_types)
            .map(|_| Net::fitting(config.descriptor_dim(), &config.fitting, rng))
            .collect();
        Self {
            config,
            embeddings,
            fittings,
            e0: vec![0.0; n_types],
        }
    }

    pub fn num_params(&self) -> usize {
        self.embeddings
            .iter()
            .chain(self.fittings.iter())
            .map(|n| n.num_params())
            .sum()
    }

    /// Canonical flat parameter vector: embeddings (type order) then
    /// fittings (type order), each in `Net::flat_params` order.
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for n in self.embeddings.iter().chain(self.fittings.iter()) {
            out.extend(n.flat_params());
        }
        out
    }

    pub fn set_flat_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.num_params(), "flat parameter length");
        let mut off = 0;
        for n in self.embeddings.iter_mut().chain(self.fittings.iter_mut()) {
            let k = n.num_params();
            n.set_flat_params(&flat[off..off + k]);
            off += k;
        }
    }

    pub fn cast<U: Real>(&self) -> DpModel<U> {
        DpModel {
            config: self.config.clone(),
            embeddings: self.embeddings.iter().map(|n| n.cast()).collect(),
            fittings: self.fittings.iter().map(|n| n.cast()).collect(),
            e0: self.e0.clone(),
        }
    }

    pub fn to_data(&self) -> DpModelData {
        DpModelData {
            config: self.config.clone(),
            embeddings: self.embeddings.iter().map(|n| n.to_weights()).collect(),
            fittings: self.fittings.iter().map(|n| n.to_weights()).collect(),
            e0: self.e0.clone(),
        }
    }

    pub fn from_data(data: &DpModelData) -> Self {
        data.config.check();
        Self {
            config: data.config.clone(),
            embeddings: data.embeddings.iter().map(Net::from_weights).collect(),
            fittings: data.fittings.iter().map(Net::from_weights).collect(),
            e0: data.e0.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_model_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DpModel::<f64>::new_random(DpConfig::small(2, 5.0, 12), &mut rng);
        assert_eq!(m.embeddings.len(), 2);
        assert_eq!(m.fittings.len(), 2);
        assert_eq!(m.embeddings[0].in_dim(), 1);
        assert_eq!(m.embeddings[0].out_dim(), 16);
        assert_eq!(m.fittings[0].in_dim(), 16 * 4);
        assert_eq!(m.fittings[0].out_dim(), 1);
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = DpModel::<f64>::new_random(DpConfig::small(1, 5.0, 12), &mut rng);
        let p = m.flat_params();
        assert_eq!(p.len(), m.num_params());
        let shifted: Vec<f64> = p.iter().map(|x| x + 0.5).collect();
        m.set_flat_params(&shifted);
        assert_eq!(m.flat_params(), shifted);
    }

    #[test]
    fn data_roundtrip_preserves_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DpModel::<f64>::new_random(DpConfig::small(2, 5.0, 8), &mut rng);
        let back = DpModel::<f64>::from_data(&m.to_data());
        assert_eq!(m.flat_params(), back.flat_params());
    }

    #[test]
    fn paper_model_parameter_count() {
        // embedding 1->25->50->100: (25+25)+(25*50+50)+(50*100+100) = 6425
        // fitting 400->240->240->240->1:
        //   400*240+240 + 240*240+240 * 2 + 240+1
        let mut rng = StdRng::seed_from_u64(4);
        let m = DpModel::<f64>::new_random(DpConfig::water_paper(), &mut rng);
        let emb = 25 + 25 + (25 * 50 + 50) + (50 * 100 + 100);
        let fit = 400 * 240 + 240 + 2 * (240 * 240 + 240) + 240 + 1;
        assert_eq!(m.num_params(), 2 * emb + 2 * fit);
    }
}
