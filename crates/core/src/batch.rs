//! Cross-request batching of formatted environments (§5.2.1 across
//! systems).
//!
//! The fixed-shape padded layout makes every atom contribute exactly
//! `Nm = Σ sel[t]` rows to the environment matrix, independent of which
//! *system* the atom belongs to. Concatenating the formatted tables of
//! several standalone configurations therefore yields one taller table of
//! the same shape class, and a single [`crate::eval::evaluate_into`] call
//! over it runs the same tall GEMMs the paper uses to batch atoms within
//! one system — now amortized across requests (the serving scheduler's
//! coalescing primitive).
//!
//! Correctness argument for bit-identical per-request results: every
//! pipeline stage is per-atom-row independent (embedding GEMM rows,
//! elementwise activations, per-atom descriptor contraction, per-row
//! fitting, per-slot force gradients), neighbor indices never cross a
//! request boundary after offsetting, the force scatter visits slots in
//! row-major order (so each request's accumulation order is unchanged),
//! and a request's energy is the left-to-right sum of its contiguous
//! `per_atom_energy` slice — the same summation the solo evaluation
//! performs. The one global quantity is the virial, which is accumulated
//! across the whole table and is therefore *not* attributable to a single
//! request; batched results omit it.
//!
//! Only standalone configurations batch: every atom must be local
//! (`n_local == len`), because the joined table indexes one flat atom
//! array and a ghost region would interleave the offsets.

use crate::config::DpConfig;
use crate::format::{FormattedEnv, NONE};

/// Reset a table to an empty batch accumulator for `cfg`, keeping the
/// backing capacity (steady-state appends never reallocate).
pub fn reset_joined(dst: &mut FormattedEnv, cfg: &DpConfig) {
    dst.sel.clear();
    dst.sel.extend_from_slice(&cfg.sel);
    dst.nm = cfg.nm();
    dst.n_atoms = 0;
    dst.indices.clear();
    dst.env.clear();
    dst.denv.clear();
    dst.disp.clear();
    dst.overflowed = 0;
}

/// Append one request's formatted table to the joined batch table,
/// shifting its neighbor indices into the batch's flat atom numbering
/// (`atom_offset` = atoms appended so far). Padding slots stay `NONE`.
pub fn append_joined(dst: &mut FormattedEnv, src: &FormattedEnv, atom_offset: usize) {
    assert_eq!(dst.sel, src.sel, "batched requests must share one model config");
    assert_eq!(dst.nm, src.nm);
    let off = atom_offset as i32;
    dst.n_atoms += src.n_atoms;
    dst.indices
        .extend(src.indices.iter().map(|&j| if j == NONE { NONE } else { j + off }));
    dst.env.extend_from_slice(&src.env);
    dst.denv.extend_from_slice(&src.denv);
    dst.disp.extend_from_slice(&src.disp);
    dst.overflowed += src.overflowed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpConfig;
    use crate::format::format_optimized_into;
    use crate::potential_impl::{BatchItem, DeepPotential, PrecisionMode};
    use crate::model::DpModel;
    use crate::codec::Codec;
    use dp_md::{lattice, units, NeighborList, Potential, System};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_systems() -> Vec<System> {
        let mut rng = StdRng::seed_from_u64(97);
        // heterogeneous sizes so batch offsets are non-trivial; every
        // axis ≥ 3 cells keeps the 4.5 Å cutoff under the minimum-image
        // limit (3 · 3.615 / 2 = 5.42)
        [[3, 3, 3], [4, 3, 3], [4, 4, 4]]
            .into_iter()
            .map(|reps| {
                let mut s = lattice::fcc(3.615, reps, units::MASS_CU);
                s.perturb(0.12, &mut rng);
                s
            })
            .collect()
    }

    fn potential() -> DeepPotential {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(31);
        DeepPotential::new(DpModel::<f64>::new_random(cfg, &mut rng), PrecisionMode::Double)
    }

    #[test]
    fn joined_table_is_the_concatenation_with_offset_indices() {
        let cfg = DpConfig::small(1, 4.5, 16);
        let systems = sample_systems();
        let mut joined = FormattedEnv::alloc(0, &cfg);
        reset_joined(&mut joined, &cfg);
        let mut parts = Vec::new();
        let mut off = 0usize;
        for sys in &systems {
            let nl = NeighborList::build(sys, cfg.rcut);
            let mut fmt = FormattedEnv::alloc(sys.len(), &cfg);
            format_optimized_into(&mut fmt, sys, &nl, &cfg, Codec::auto(1, sys.len(), cfg.rcut));
            append_joined(&mut joined, &fmt, off);
            parts.push((fmt, off));
            off += sys.len();
        }
        assert_eq!(joined.n_atoms, systems.iter().map(|s| s.len()).sum::<usize>());
        let mut slot = 0usize;
        for (fmt, off) in &parts {
            for (k, &j) in fmt.indices.iter().enumerate() {
                let joined_j = joined.indices[slot + k];
                if j == NONE {
                    assert_eq!(joined_j, NONE);
                } else {
                    assert_eq!(joined_j, j + *off as i32);
                }
            }
            let rows = fmt.n_atoms * fmt.nm;
            assert_eq!(
                &joined.env[slot * 4..(slot + rows) * 4],
                &fmt.env[..rows * 4],
                "environment rows must concatenate unchanged"
            );
            slot += rows;
        }
    }

    #[test]
    fn batched_eval_is_bit_identical_to_serial_in_every_mode() {
        let pot = potential();
        let systems = sample_systems();
        let nls: Vec<NeighborList> =
            systems.iter().map(|s| NeighborList::build(s, pot.cutoff())).collect();
        for mode in [
            PrecisionMode::Double,
            PrecisionMode::Mixed,
            PrecisionMode::HalfEmulated,
        ] {
            let items: Vec<BatchItem> = systems
                .iter()
                .zip(&nls)
                .map(|(sys, nl)| BatchItem { sys, nl })
                .collect();
            let batched = pot.compute_batch(&items, mode);
            assert_eq!(batched.len(), systems.len());
            for ((sys, nl), res) in systems.iter().zip(&nls).zip(&batched) {
                let solo = DeepPotential::new(pot.model().clone(), mode);
                let out = solo.compute(sys, nl);
                assert_eq!(
                    res.energy.to_bits(),
                    out.energy.to_bits(),
                    "energy must be bit-identical in {mode:?}"
                );
                assert_eq!(res.forces.len(), out.forces.len());
                for (a, b) in res.forces.iter().zip(&out.forces) {
                    for k in 0..3 {
                        assert_eq!(
                            a[k].to_bits(),
                            b[k].to_bits(),
                            "forces must be bit-identical in {mode:?}"
                        );
                    }
                }
                let slice_sum: f64 = res.per_atom_energy.iter().sum();
                assert_eq!(slice_sum.to_bits(), res.energy.to_bits());
            }
        }
    }

    #[test]
    fn singleton_batch_matches_compute_into() {
        let pot = potential();
        let systems = sample_systems();
        let sys = &systems[2];
        let nl = NeighborList::build(sys, pot.cutoff());
        let batched = pot.compute_batch(&[BatchItem { sys, nl: &nl }], PrecisionMode::Mixed);
        let solo = DeepPotential::new(pot.model().clone(), PrecisionMode::Mixed).compute(sys, &nl);
        assert_eq!(batched[0].energy.to_bits(), solo.energy.to_bits());
    }

    #[test]
    fn flat_batch_output_matches_per_request_results() {
        use crate::potential_impl::BatchOutput;
        let pot = potential();
        let systems = sample_systems();
        let nls: Vec<NeighborList> =
            systems.iter().map(|s| NeighborList::build(s, pot.cutoff())).collect();
        let items: Vec<BatchItem> = systems
            .iter()
            .zip(&nls)
            .map(|(sys, nl)| BatchItem { sys, nl })
            .collect();
        let per_request = pot.compute_batch(&items, PrecisionMode::Mixed);
        let mut flat = BatchOutput::new();
        pot.compute_batch_into(&items, PrecisionMode::Mixed, &mut flat);
        assert_eq!(flat.len(), per_request.len());
        for (k, res) in per_request.iter().enumerate() {
            assert_eq!(flat.energies[k].to_bits(), res.energy.to_bits());
            assert_eq!(flat.forces_of(k).len(), res.forces.len());
            for (a, b) in flat.forces_of(k).iter().zip(&res.forces) {
                for d in 0..3 {
                    assert_eq!(a[d].to_bits(), b[d].to_bits());
                }
            }
            for (a, b) in flat.per_atom_energy_of(k).iter().zip(&res.per_atom_energy) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // steady state: re-dispatching the same batch must not grow the
        // flat output (the ensemble engine calls this once per tick)
        let cap = (flat.forces.capacity(), flat.per_atom_energy.capacity());
        pot.compute_batch_into(&items, PrecisionMode::Mixed, &mut flat);
        assert_eq!(cap, (flat.forces.capacity(), flat.per_atom_energy.capacity()));
    }

    #[test]
    fn steady_state_batch_reuses_the_joined_capacity() {
        let cfg = DpConfig::small(1, 4.5, 16);
        let systems = sample_systems();
        let mut joined = FormattedEnv::alloc(0, &cfg);
        let mut fmts = Vec::new();
        for sys in &systems {
            let nl = NeighborList::build(sys, cfg.rcut);
            let mut fmt = FormattedEnv::alloc(sys.len(), &cfg);
            format_optimized_into(&mut fmt, sys, &nl, &cfg, Codec::auto(1, sys.len(), cfg.rcut));
            fmts.push(fmt);
        }
        let fill = |joined: &mut FormattedEnv| {
            reset_joined(joined, &cfg);
            let mut off = 0;
            for fmt in &fmts {
                append_joined(joined, fmt, off);
                off += fmt.n_atoms;
            }
        };
        fill(&mut joined);
        let cap = (joined.indices.capacity(), joined.env.capacity());
        fill(&mut joined);
        assert_eq!(
            cap,
            (joined.indices.capacity(), joined.env.capacity()),
            "re-filling the same batch must not grow the joined table"
        );
    }
}
