//! Reusable evaluation arena (§5.2.2).
//!
//! The paper eliminates per-step allocation by "allocat[ing] a trunk of
//! memory at the initialization stage" and reusing it for the whole MD run.
//! [`EvalWorkspace`] is the CPU analogue for the optimized evaluation
//! pipeline in [`crate::eval`]: every intermediate the pipeline needs —
//! per-layer network activations and cached tanh gradients, descriptor
//! contraction scratch, backward buffers, per-slot force gradients — lives
//! in one struct whose buffers grow to the steady-state problem size on the
//! first call and are never re-allocated afterwards. `evaluate_into`
//! borrows it; `evaluate` remains the convenience wrapper that builds a
//! fresh one per call.
//!
//! Buffer rotation inside a network pass uses `std::mem::swap` of matrices,
//! so capacities migrate between roles but are never dropped; after a few
//! warm-up evaluations the capacity assignment reaches a fixed point and
//! the steady state performs zero heap allocations (enforced by
//! `tests/alloc_regression.rs` at the workspace root).

use crate::config::DpConfig;
use dp_linalg::{Matrix, Real};

/// Buffers for one network forward/backward pass: the final activation,
/// the per-layer cached tanh gradients (`1 - tanh²`, §5.3.3), and the
/// ping-pong scratch used while walking the layers.
pub struct NetPass<T> {
    /// Final activation of the forward pass (the embedding matrix `G` for
    /// embedding nets, the energy column for fitting nets).
    pub out: Matrix<T>,
    /// Cached tanh gradient per layer; empty (0×0) for `Linear` layers.
    pub tgrads: Vec<Matrix<T>>,
    /// Pre-activation scratch.
    pub pre: Matrix<T>,
    /// tanh output scratch.
    pub act: Matrix<T>,
    /// Skip-connection scratch.
    pub skip: Matrix<T>,
}

impl<T: Real> Default for NetPass<T> {
    fn default() -> Self {
        Self {
            out: Matrix::zeros(0, 0),
            tgrads: Vec::new(),
            pre: Matrix::zeros(0, 0),
            act: Matrix::zeros(0, 0),
            skip: Matrix::zeros(0, 0),
        }
    }
}

impl<T: Real> NetPass<T> {
    /// Ensure one tgrad slot per layer (allocates only on first use).
    pub fn ensure_layers(&mut self, n: usize) {
        while self.tgrads.len() < n {
            self.tgrads.push(Matrix::zeros(0, 0));
        }
    }
}

/// The §5.2.2 "trunk of memory" for [`crate::eval::evaluate_into`]: every
/// per-chunk intermediate of the evaluation pipeline, allocated once and
/// reused across chunks, steps, and atom-count changes.
pub struct EvalWorkspace<T> {
    /// Per-neighbor-type embedding pass (activations persist across the
    /// descriptor and backward stages).
    pub emb_passes: Vec<NetPass<T>>,
    /// Shared fitting-net pass (forward + backward complete per center
    /// type before the next, so one set of buffers suffices).
    pub fit_pass: NetPass<T>,
    /// Backward-pass gradient and ping-pong scratch.
    pub bwd_g: Matrix<T>,
    pub bwd_a: Matrix<T>,
    pub bwd_b: Matrix<T>,
    /// Embedding input column `s(r)` (reused across neighbor types).
    pub s_col: Matrix<T>,
    /// Fitting input rows gathered per center type.
    pub fit_x: Matrix<T>,
    /// All-ones seed for the fitting backward pass.
    pub ones: Matrix<T>,
    /// dE/dG per neighbor type (descriptor backward → embedding backward).
    pub dg_mats: Vec<Matrix<T>>,
    /// dE/ds per neighbor type (embedding backward → ProdForce).
    pub ds_cols: Vec<Matrix<T>>,
    /// dE/dR̃ per neighbor type, 4 per slot, f64 for the f64 ProdForce.
    pub denv_blocks: Vec<Vec<f64>>,
    /// dE/dR̃ scratch in evaluation precision (one type at a time),
    /// filled by the batched descriptor-backward GEMMs before the f64
    /// conversion into `denv_blocks`.
    pub denv_t: Vec<T>,
    /// Per-neighbor-type environment block `R̃` gathered in evaluation
    /// precision (`nc·sel[t]` rows × 4): the dense operand of the
    /// strided batched descriptor GEMMs (§5.2.1 fixed-shape layout).
    pub envm: Vec<Vec<T>>,
    /// Flat per-atom descriptor matrix `D` (chunk × m_w·m2).
    pub desc: Vec<T>,
    /// Flat per-atom `T1` (chunk × m_w·4) and `T2` (chunk × 4·m2).
    pub t1: Vec<T>,
    pub t2: Vec<T>,
    /// Flat per-atom backward scratch dT1/dT2.
    pub dt1: Vec<T>,
    pub dt2: Vec<T>,
    /// Flat per-atom dE/dD (chunk × descriptor_dim).
    pub d_desc: Vec<T>,
    /// Chunk atoms grouped by center type.
    pub by_type: Vec<Vec<usize>>,
    /// Slot offsets of each neighbor-type block within an atom's row.
    pub block_off: Vec<usize>,
    /// Per-slot force gradient from ProdForce.
    pub slot_grads: Vec<[f64; 3]>,
}

impl<T: Real> EvalWorkspace<T> {
    pub fn new(cfg: &DpConfig) -> Self {
        let n_types = cfg.n_types();
        Self {
            emb_passes: (0..n_types).map(|_| NetPass::default()).collect(),
            fit_pass: NetPass::default(),
            bwd_g: Matrix::zeros(0, 0),
            bwd_a: Matrix::zeros(0, 0),
            bwd_b: Matrix::zeros(0, 0),
            s_col: Matrix::zeros(0, 0),
            fit_x: Matrix::zeros(0, 0),
            ones: Matrix::zeros(0, 0),
            dg_mats: (0..n_types).map(|_| Matrix::zeros(0, 0)).collect(),
            ds_cols: (0..n_types).map(|_| Matrix::zeros(0, 0)).collect(),
            denv_blocks: vec![Vec::new(); n_types],
            denv_t: Vec::new(),
            envm: (0..n_types).map(|_| Vec::new()).collect(),
            desc: Vec::new(),
            t1: Vec::new(),
            t2: Vec::new(),
            dt1: Vec::new(),
            dt2: Vec::new(),
            d_desc: Vec::new(),
            by_type: vec![Vec::new(); n_types],
            block_off: vec![0; n_types + 1],
            slot_grads: Vec::new(),
        }
    }
}

/// Clear + zero-fill a vector to `n` elements, reusing its allocation.
pub(crate) fn reuse_zeroed<T: Clone>(v: &mut Vec<T>, n: usize, zero: T) {
    v.clear();
    v.resize(n, zero);
}

/// Resize a vector to `n` elements without caring about contents (every
/// element is overwritten by the caller), reusing its allocation.
pub(crate) fn reuse_uninit<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
    if v.len() < n {
        v.resize(n, fill);
    } else {
        v.truncate(n);
    }
}
