//! The unoptimized reference implementation, standing in for the 2018
//! serial DeePMD-kit that the paper uses as its baseline (§4, Table 1).
//!
//! Everything is done the slow way, on purpose: single-threaded per-atom
//! loops, struct-comparator neighbor sorting, per-atom small GEMMs,
//! materialized slices and concatenations, and fresh allocations for every
//! intermediate. The physics is identical — `optimized_matches_baseline`
//! below pins the two pipelines together to machine precision, which is
//! also the strongest correctness check we have on the optimized path.

use crate::eval::EvalOutput;
use crate::format::{format_baseline, FormattedEnv, NONE};
use crate::model::DpModel;
use dp_linalg::fused::{concat_sum_baseline, tanh_forward};
use dp_linalg::gemm::{matmul, matmul_nt, matmul_then_sum, matmul_tn};
use dp_linalg::Matrix;
use dp_md::{NeighborList, System};
use dp_nn::layer::LayerKind;
use dp_nn::net::Net;

/// Unfused network forward, as the 2018 TensorFlow graph executed it:
/// separate MATMUL and SUM operators, CONCAT materialized for the skip
/// connections, plain TANH with no gradient caching. Returns the output
/// and the pre-activation inputs (`xW+b`) each layer saw, which the
/// backward pass uses to *recompute* tanh (the TANHGrad operator).
fn unfused_forward(net: &Net<f64>, x: &Matrix<f64>) -> (Matrix<f64>, Vec<Matrix<f64>>) {
    let mut pres = Vec::with_capacity(net.layers.len());
    let mut h = x.clone();
    for l in &net.layers {
        let pre = matmul_then_sum(&h, &l.w, &l.b);
        h = match l.kind {
            LayerKind::Linear => pre.clone(),
            LayerKind::Plain => tanh_forward(&pre),
            LayerKind::Growth => {
                let t = tanh_forward(&pre);
                concat_sum_baseline(&h, &t)
            }
            LayerKind::Residual => {
                let mut t = tanh_forward(&pre);
                t.axpy(1.0, &h);
                t
            }
        };
        pres.push(pre);
    }
    (h, pres)
}

/// Unfused backward: recomputes `1 - tanh²(xW+b)` from the stored
/// pre-activations (two TANH evaluations per layer per step, exactly the
/// redundancy the fused kernel of §5.3.3 removes).
fn unfused_backward_input(net: &Net<f64>, pres: &[Matrix<f64>], dy: &Matrix<f64>) -> Matrix<f64> {
    let mut g = dy.clone();
    for (l, pre) in net.layers.iter().zip(pres.iter()).rev() {
        g = match l.kind {
            LayerKind::Linear => matmul_nt(&g, &l.w),
            LayerKind::Plain => {
                let tgrad = pre.map(|v| {
                    let t = v.tanh();
                    1.0 - t * t
                });
                let dpre = g.hadamard(&tgrad);
                matmul_nt(&dpre, &l.w)
            }
            LayerKind::Residual => {
                let tgrad = pre.map(|v| {
                    let t = v.tanh();
                    1.0 - t * t
                });
                let dpre = g.hadamard(&tgrad);
                let mut dx = matmul_nt(&dpre, &l.w);
                dx.axpy(1.0, &g);
                dx
            }
            LayerKind::Growth => {
                let tgrad = pre.map(|v| {
                    let t = v.tanh();
                    1.0 - t * t
                });
                let dpre = g.hadamard(&tgrad);
                let mut dx = matmul_nt(&dpre, &l.w);
                let k = l.w.rows();
                for i in 0..g.rows() {
                    let g_row = g.row(i);
                    let dx_row = dx.row_mut(i);
                    for j in 0..k {
                        dx_row[j] += g_row[j] + g_row[j + k];
                    }
                }
                dx
            }
        };
    }
    g
}

/// Evaluate with the baseline pipeline (always f64).
pub fn evaluate_baseline(model: &DpModel<f64>, sys: &System, nl: &NeighborList) -> EvalOutput {
    let fmt = format_baseline(sys, nl, &model.config);
    evaluate_baseline_formatted(model, &fmt, &sys.types[..sys.n_local], sys.len())
}

/// Baseline evaluation from an existing formatted environment.
pub fn evaluate_baseline_formatted(
    model: &DpModel<f64>,
    fmt: &FormattedEnv,
    types: &[usize],
    n_total: usize,
) -> EvalOutput {
    let cfg = &model.config;
    let n_types = cfg.n_types();
    let m_w = cfg.emb_width();
    let m2 = cfg.axis_neurons;
    let nm = fmt.nm;
    let inv_nm = 1.0 / nm as f64;

    let mut block_off = vec![0usize; n_types + 1];
    for t in 0..n_types {
        block_off[t + 1] = block_off[t] + cfg.sel[t];
    }

    let mut per_atom_energy = vec![0.0f64; fmt.n_atoms];
    let mut forces = vec![[0.0f64; 3]; n_total];
    let mut virial = [0.0f64; 6];

    for atom in 0..fmt.n_atoms {
        // R̃ as an nm x 4 matrix (fresh allocation, as the baseline would)
        let r_tilde = Matrix::from_fn(nm, 4, |s, c| fmt.env[(atom * nm + s) * 4 + c]);

        // per-type embedding on small matrices, then CONCAT into G
        let mut g = Matrix::<f64>::zeros(nm, m_w);
        let mut caches_per_type = Vec::with_capacity(n_types);
        for t in 0..n_types {
            let sel_t = cfg.sel[t];
            let s_col = Matrix::from_fn(sel_t, 1, |k, _| {
                fmt.env[(atom * nm + block_off[t] + k) * 4]
            });
            let (g_t, caches) = unfused_forward(&model.embeddings[t], &s_col);
            for k in 0..sel_t {
                g.row_mut(block_off[t] + k).copy_from_slice(g_t.row(k));
            }
            caches_per_type.push(caches);
        }

        // zero G rows of padded slots so the full-matrix contraction below
        // matches the skip-padded optimized path exactly
        for s in 0..nm {
            if fmt.indices[atom * nm + s] == NONE {
                g.row_mut(s).fill(0.0);
            }
        }

        // T1 = Gᵀ R̃ / nm ; T2 = R̃ᵀ G< / nm ; D = T1 T2
        let mut t1 = matmul_tn(&g, &r_tilde);
        t1.scale(inv_nm);
        let g_lt = Matrix::from_fn(nm, m2, |s, a| g[(s, a)]);
        let mut t2 = matmul_tn(&r_tilde, &g_lt);
        t2.scale(inv_nm);
        let d = matmul(&t1, &t2); // m_w x m2

        // fitting on a single row
        let d_row = Matrix::from_vec(1, m_w * m2, d.as_slice().to_vec());
        let ty = types[atom];
        let (e, fit_caches) = unfused_forward(&model.fittings[ty], &d_row);
        per_atom_energy[atom] = e[(0, 0)] + model.e0[ty];

        // backward: dE/dD
        let ones = Matrix::full(1, 1, 1.0);
        let dd_row = unfused_backward_input(&model.fittings[ty], &fit_caches, &ones);
        let dd = Matrix::from_vec(m_w, m2, dd_row.as_slice().to_vec());

        // dT1 = dD T2ᵀ ; dT2 = T1ᵀ dD
        let dt1 = matmul_nt(&dd, &t2); // m_w x 4
        let dt2 = matmul_tn(&t1, &dd); // 4 x m2

        // dG = R̃ dT1ᵀ / nm (+ G< path), dR̃ = G dT1 / nm + G< dT2ᵀ / nm
        let mut dg = matmul_nt(&r_tilde, &dt1); // nm x m_w
        dg.scale(inv_nm);
        let dg_lt = {
            let mut x = matmul(&r_tilde, &dt2); // nm x m2
            x.scale(inv_nm);
            x
        };
        for s in 0..nm {
            for a in 0..m2 {
                dg[(s, a)] += dg_lt[(s, a)];
            }
        }
        let mut dr = matmul(&g, &dt1); // nm x 4
        dr.scale(inv_nm);
        let dr2 = {
            let mut x = matmul_nt(&g_lt, &dt2); // nm x 4
            x.scale(inv_nm);
            x
        };
        dr.axpy(1.0, &dr2);

        // embedding backward per type: dE/ds
        let mut ds = vec![0.0f64; nm];
        for t in 0..n_types {
            let sel_t = cfg.sel[t];
            let dg_t = Matrix::from_fn(sel_t, m_w, |k, mi| dg[(block_off[t] + k, mi)]);
            let ds_t = unfused_backward_input(&model.embeddings[t], &caches_per_type[t], &dg_t);
            for k in 0..sel_t {
                ds[block_off[t] + k] = ds_t[(k, 0)];
            }
        }

        // ProdForce / ProdVirial
        for s in 0..nm {
            let slot = atom * nm + s;
            let j = fmt.indices[slot];
            if j == NONE {
                continue;
            }
            let j = j as usize;
            let gw = [dr[(s, 0)] + ds[s], dr[(s, 1)], dr[(s, 2)], dr[(s, 3)]];
            let jac = &fmt.denv[slot * 12..slot * 12 + 12];
            let mut grad = [0.0; 3];
            for kk in 0..3 {
                grad[kk] = gw[0] * jac[kk]
                    + gw[1] * jac[3 + kk]
                    + gw[2] * jac[6 + kk]
                    + gw[3] * jac[9 + kk];
            }
            let dvec = &fmt.disp[slot * 3..slot * 3 + 3];
            for kk in 0..3 {
                forces[atom][kk] += grad[kk];
                forces[j][kk] -= grad[kk];
            }
            virial[0] -= dvec[0] * grad[0];
            virial[1] -= dvec[1] * grad[1];
            virial[2] -= dvec[2] * grad[2];
            virial[3] -= dvec[0] * grad[1];
            virial[4] -= dvec[0] * grad[2];
            virial[5] -= dvec[1] * grad[2];
        }
    }

    EvalOutput {
        energy: per_atom_energy.iter().sum(),
        per_atom_energy,
        forces,
        virial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::config::DpConfig;
    use crate::eval::evaluate;
    use crate::format::format_optimized;
    use dp_md::{lattice, units};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimized_matches_baseline_single_species() {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(21);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.12, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);

        let base = evaluate_baseline(&model, &sys, &nl);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        let fast = evaluate(&model, &fmt, &sys.types, sys.len(), None);

        assert!(
            (base.energy - fast.energy).abs() < 1e-9,
            "energy {} vs {}",
            base.energy,
            fast.energy
        );
        for (a, b) in base.forces.iter().zip(&fast.forces) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
        for k in 0..6 {
            assert!((base.virial[k] - fast.virial[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn optimized_matches_baseline_two_species() {
        let cfg = DpConfig {
            rcut: 5.0,
            rcut_smth: 1.0,
            sel: vec![12, 24],
            embedding: vec![4, 8],
            fitting: vec![16, 16],
            axis_neurons: 3,
        };
        let mut rng = StdRng::seed_from_u64(22);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::water_box([3, 3, 3], 3.5);
        sys.perturb(0.05, &mut rng);
        let nl = NeighborList::build(&sys, cfg.rcut);

        let base = evaluate_baseline(&model, &sys, &nl);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        let fast = evaluate(&model, &fmt, &sys.types, sys.len(), None);

        assert!((base.energy - fast.energy).abs() < 1e-9);
        for (a, b) in base.forces.iter().zip(&fast.forces) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-8, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn baseline_forces_match_fd() {
        let cfg = DpConfig::small(1, 4.5, 16);
        let mut rng = StdRng::seed_from_u64(23);
        let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
        let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
        sys.perturb(0.1, &mut rng);

        let compute = |sys: &System| {
            let nl = NeighborList::build(sys, cfg.rcut);
            evaluate_baseline(&model, sys, &nl)
        };
        let out = compute(&sys);
        let eps = 1e-6;
        for k in 0..3 {
            let orig = sys.positions[30][k];
            sys.positions[30][k] = orig + eps;
            let ep = compute(&sys).energy;
            sys.positions[30][k] = orig - eps;
            let em = compute(&sys).energy;
            sys.positions[30][k] = orig;
            let fd = -(ep - em) / (2.0 * eps);
            assert!((fd - out.forces[30][k]).abs() < 1e-6);
        }
    }
}
