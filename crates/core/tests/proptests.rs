//! Property-based tests on the Deep Potential pipeline invariants.

use deepmd_core::codec::{decode_binary, decode_paper, encode_binary, encode_paper, Codec};
use deepmd_core::config::DpConfig;
use deepmd_core::eval::evaluate;
use deepmd_core::format::format_optimized;
use deepmd_core::model::DpModel;
use dp_md::{Cell, NeighborList, System};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn paper_codec_roundtrip(ty in 0usize..10, r in 0.0..91.9f64, j in 0usize..100_000) {
        let (t2, r2, j2) = decode_paper(encode_paper(ty, r, j));
        prop_assert_eq!(t2, ty);
        prop_assert_eq!(j2, j);
        prop_assert!((r2 - r).abs() < 1e-7);
    }

    #[test]
    fn binary_codec_roundtrip(ty in 0usize..64, r in 0.0..127.9f64, j in 0usize..(1usize<<31)) {
        let (t2, r2, j2) = decode_binary(encode_binary(ty, r, j));
        prop_assert_eq!(t2, ty);
        prop_assert_eq!(j2, j);
        prop_assert!((r2 - r).abs() < 2e-6);
    }

    #[test]
    fn codec_order_matches_struct_order(
        entries in prop::collection::vec((0usize..4, 0.1..60.0f64, 0usize..1000), 2..40)
    ) {
        for codec in [Codec::PaperDecimal, Codec::Binary] {
            let mut keys: Vec<u64> = entries.iter().map(|&(t, r, j)| codec.encode(t, r, j)).collect();
            keys.sort_unstable();
            let mut sorted = entries.clone();
            sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
            // compare (type, index) sequences; distances may quantize-tie
            let from_keys: Vec<(usize, usize)> = keys.iter().map(|&k| {
                let (t, _, j) = codec.decode(k);
                (t, j)
            }).collect();
            let from_structs: Vec<(usize, usize)> = sorted.iter().map(|&(t, _, j)| (t, j)).collect();
            prop_assert_eq!(from_keys, from_structs);
        }
    }
}

fn random_cluster(seed: u64, n_side: usize) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..2 {
                positions.push([
                    30.0 + i as f64 * 2.6,
                    30.0 + j as f64 * 2.6,
                    30.0 + k as f64 * 2.6,
                ]);
            }
        }
    }
    let n = positions.len();
    let mut sys = System::new(Cell::open(80.0, 80.0, 80.0), positions, vec![0; n], vec![63.5]);
    sys.perturb(0.15, &mut rng);
    sys
}

fn dp_energy(model: &DpModel<f64>, sys: &System) -> f64 {
    let nl = NeighborList::build(sys, model.config.rcut);
    let fmt = format_optimized(sys, &nl, &model.config, Codec::Binary);
    evaluate(model, &fmt, &sys.types, sys.len(), None).energy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_rotation_preserves_energy(seed in 0u64..1000, angle in 0.0..std::f64::consts::TAU) {
        let cfg = DpConfig::small(1, 4.5, 20);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = DpModel::<f64>::new_random(cfg, &mut rng);
        let sys = random_cluster(seed.wrapping_mul(31), 3);
        let e0 = dp_energy(&model, &sys);

        // rotate about z through the centroid
        let mut c = [0.0; 3];
        for p in &sys.positions {
            for k in 0..3 {
                c[k] += p[k] / sys.len() as f64;
            }
        }
        let (s, co) = (angle.sin(), angle.cos());
        let mut rot = sys.clone();
        for p in &mut rot.positions {
            let x = p[0] - c[0];
            let y = p[1] - c[1];
            p[0] = c[0] + co * x - s * y;
            p[1] = c[1] + s * x + co * y;
        }
        let e1 = dp_energy(&model, &rot);
        prop_assert!((e0 - e1).abs() < 1e-8, "rotation changed E: {} vs {}", e0, e1);
    }

    #[test]
    fn forces_antisymmetric_under_net_translation(seed in 0u64..1000) {
        // total force vanishes for any configuration (Newton's third law
        // through the per-slot scatter)
        let cfg = DpConfig::small(1, 4.5, 20);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = DpModel::<f64>::new_random(cfg, &mut rng);
        let sys = random_cluster(seed.wrapping_mul(17).wrapping_add(5), 3);
        let nl = NeighborList::build(&sys, model.config.rcut);
        let fmt = format_optimized(&sys, &nl, &model.config, Codec::Binary);
        let out = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let mut total = [0.0f64; 3];
        for f in &out.forces {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            prop_assert!(total[k].abs() < 1e-9, "net force {:?}", total);
        }
    }

    #[test]
    fn mixed_precision_bounded_deviation(seed in 0u64..1000) {
        let cfg = DpConfig::small(1, 4.5, 20);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = DpModel::<f64>::new_random(cfg, &mut rng);
        let model32 = model.cast::<f32>();
        let sys = random_cluster(seed.wrapping_mul(7).wrapping_add(1), 3);
        let nl = NeighborList::build(&sys, model.config.rcut);
        let fmt = format_optimized(&sys, &nl, &model.config, Codec::Binary);
        let d = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        let m = evaluate(&model32, &fmt, &sys.types, sys.len(), None);
        let e_dev = (d.energy - m.energy).abs() / sys.len() as f64;
        prop_assert!(e_dev < 1e-4);
        for (a, b) in d.forces.iter().zip(&m.forces) {
            for k in 0..3 {
                prop_assert!((a[k] - b[k]).abs() < 1e-3);
            }
        }
    }
}
