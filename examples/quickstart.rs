//! Quickstart: the full Deep Potential workflow in one file.
//!
//! 1. Generate "ab initio" training data (here: a Lennard-Jones reference
//!    potential labels perturbed fcc-argon configurations),
//! 2. train a small DP model with the energy+force loss,
//! 3. run NVE molecular dynamics with the trained network as the force
//!    field and watch energy conservation,
//! 4. compare DP against the reference on held-out configurations.
//!
//! Run with: `cargo run --release --example quickstart`

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::integrate::{run_md, MdOptions};
use deepmd_repro::md::potential::pair::LennardJones;
use deepmd_repro::md::{lattice, Potential};
use deepmd_repro::train::dataset::perturbed_frames;
use deepmd_repro::train::trainer::rmse_on_frames;
use deepmd_repro::train::{LossWeights, Trainer};
use deepmd_repro::md::rng::CounterRng;

fn main() {
    let mut rng = CounterRng::new(1);

    // --- 1. training data from the reference potential ("the DFT") ---
    let reference = LennardJones::new(0.0104, 3.405, 5.0);
    let base = lattice::fcc(5.26, [2, 2, 2], 39.948); // 32 argon atoms
    let frames = perturbed_frames(&base, &reference, 10, 0.35, &mut rng);
    let held_out = perturbed_frames(&base, &reference, 4, 0.30, &mut rng);
    println!("labelled {} training + {} held-out frames", frames.len(), held_out.len());

    // --- 2. train a Deep Potential ---
    let cfg = DpConfig {
        rcut: 5.0,
        rcut_smth: 1.5,
        sel: vec![24],
        embedding: vec![8, 16],
        fitting: vec![32, 32],
        axis_neurons: 4,
    };
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let mut trainer = Trainer::new(model, &frames, 0.02, LossWeights::default());
    for k in 0..120 {
        let r = trainer.step();
        if k % 30 == 0 {
            println!("  step {:3}: loss {:.3e} (lr {:.2e})", r.step, r.loss, r.lr);
        }
    }
    let fit = trainer.rmse();
    let test = rmse_on_frames(&trainer.model, &held_out);
    println!(
        "train RMSE: {:.3e} eV/atom, {:.3e} eV/Å | held-out: {:.3e} eV/atom, {:.3e} eV/Å",
        fit.energy_per_atom, fit.force, test.energy_per_atom, test.force
    );

    // --- 3. NVE MD driven by the trained network ---
    let dp = DeepPotential::new(trainer.model, PrecisionMode::Double);
    let mut sys = lattice::fcc(5.26, [3, 3, 3], 39.948);
    sys.init_velocities(40.0, &mut rng);
    let opts = MdOptions {
        dt: 2.0e-3,
        skin: 1.5,
        thermo_every: 25,
        ..MdOptions::default()
    };
    let run = run_md(&mut sys, &dp, &opts, 150, |s| {
        println!(
            "  step {:4}  E = {:+.4} eV  T = {:5.1} K",
            s.step,
            s.total_energy(),
            s.temperature
        );
    });
    let drift = (run.thermo.last().unwrap().total_energy()
        - run.thermo.first().unwrap().total_energy())
    .abs()
        / sys.len() as f64;
    println!(
        "NVE drift over {} steps: {:.2e} eV/atom ({} neighbor rebuilds)",
        run.steps, drift, run.neighbor_rebuilds
    );

    // --- 4. sanity: DP forces vs reference forces on the final state ---
    let nl = deepmd_repro::md::NeighborList::build(&sys, 5.0);
    let f_dp = dp.compute(&sys, &nl);
    let f_ref = reference.compute(&sys, &nl);
    let mut se = 0.0;
    for (a, b) in f_dp.forces.iter().zip(&f_ref.forces) {
        for k in 0..3 {
            se += (a[k] - b[k]).powi(2);
        }
    }
    println!(
        "force RMSE vs reference on the MD end state: {:.3e} eV/Å",
        (se / (3 * sys.len()) as f64).sqrt()
    );
}
