//! Domain-decomposed Deep Potential MD on copper — the paper's metallic
//! benchmark driven by the parallel rank driver: spatial partitioning,
//! ghost exchange, reverse force communication, deferred reductions.
//!
//! Demonstrates that parallel DP-MD conserves energy and reports the
//! Table 4-style per-rank statistics (ghost counts, rebuilds, reduce ops).
//!
//! Run with: `cargo run --release --example copper_parallel`

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::integrate::MdOptions;
use deepmd_repro::md::lattice;
use deepmd_repro::parallel::{run_parallel_md, ParallelOptions};
use deepmd_repro::md::rng::CounterRng;
use std::sync::Arc;

fn main() {
    let mut rng = CounterRng::new(12);
    // Untrained small network — parallel mechanics are weight-agnostic,
    // and a smooth random PES still conserves energy under NVE.
    let cfg = DpConfig {
        rcut: 4.0,
        rcut_smth: 1.0,
        sel: vec![32],
        embedding: vec![8, 16],
        fitting: vec![24, 24],
        axis_neurons: 4,
    };
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let dp = Arc::new(DeepPotential::new(model, PrecisionMode::Double));

    let mut sys = lattice::copper([6, 6, 6]); // 864 atoms, 21.7 Å box
    sys.init_velocities(300.0, &mut rng);

    let opts = ParallelOptions {
        md: MdOptions {
            dt: 1.0e-3,
            skin: 1.5,
            rebuild_every: 10,
            thermo_every: 20,
            ..MdOptions::default()
        },
        blocking_reduce: false,
        ..ParallelOptions::default()
    };
    println!("running 100 parallel MD steps on a 2x2x2 rank grid...");
    let run = run_parallel_md(&sys, dp, [2, 2, 2], &opts, 100).expect("parallel run failed");

    for s in &run.thermo {
        println!(
            "  step {:4}  E = {:+.4} eV  T = {:5.1} K  P = {:+.0} bar",
            s.step,
            s.total_energy(),
            s.temperature,
            s.pressure
        );
    }
    let drift = (run.thermo.last().unwrap().total_energy()
        - run.thermo.first().unwrap().total_energy())
    .abs()
        / sys.len() as f64;
    println!("\nNVE drift: {drift:.2e} eV/atom over {} steps", run.steps);
    println!("thermo allreduce operations: {}", run.reduce_operations);
    println!("\nper-rank statistics:");
    for s in &run.rank_stats {
        println!(
            "  rank {}: {} locals, {} ghosts (max), {} rebuilds, compute {:?}, comm {:?}",
            s.rank, s.final_local, s.max_ghosts, s.rebuilds, s.compute_time, s.comm_time
        );
    }
}
