//! Water MD with a two-species Deep Potential (the paper's insulating
//! benchmark system): train on the pairwise water reference model, run
//! thermostatted MD at 330 K (the paper's temperature), and compare the
//! oxygen–oxygen radial distribution function of DP-driven MD against
//! reference-driven MD.
//!
//! Run with: `cargo run --release --example water_md`

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::analysis::rdf::Rdf;
use deepmd_repro::md::integrate::{run_md, Berendsen, MdOptions};
use deepmd_repro::md::potential::pair::PairTable;
use deepmd_repro::md::{lattice, NeighborList, Potential, System};
use deepmd_repro::train::dataset::{md_frames, perturbed_frames};
use deepmd_repro::train::{LossWeights, Trainer};
use deepmd_repro::md::rng::CounterRng;

fn rdf_oo(pot: &dyn Potential, label: &str) -> Vec<(f64, f64)> {
    let mut sys: System = lattice::water_box([5, 5, 5], 3.104);
    let mut rng = CounterRng::new(9);
    sys.init_velocities(330.0, &mut rng);
    let opts = MdOptions {
        dt: 5.0e-4,
        skin: 1.5,
        thermostat: Some(Berendsen {
            target_t: 330.0,
            tau: 0.05,
        }),
        ..MdOptions::default()
    };
    run_md(&mut sys, pot, &opts, 120, |_| {});
    let mut rdf = Rdf::new(0, 0, 4.4, 44);
    for _ in 0..20 {
        run_md(&mut sys, pot, &opts, 15, |_| {});
        let nl = NeighborList::build(&sys, 4.4);
        rdf.accumulate(&sys, &nl);
    }
    println!("{label}: final T = {:.0} K", sys.temperature());
    rdf.finish()
}

fn main() {
    let mut rng = CounterRng::new(3);
    let reference = PairTable::water_reference().with_cutoff(4.5);

    // train a small two-species model (O and H embeddings + fitting nets)
    let base = lattice::water_box([3, 3, 3], 3.104);
    let mut frames = perturbed_frames(&base, &reference, 6, 0.2, &mut rng);
    frames.extend(md_frames(&base, &reference, 330.0, 4, 25, 5e-4, &mut rng));
    let cfg = DpConfig {
        rcut: 4.5,
        rcut_smth: 1.0,
        sel: vec![12, 24],
        embedding: vec![8, 16],
        fitting: vec![32, 32],
        axis_neurons: 4,
    };
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let mut trainer = Trainer::new(model, &frames, 0.02, LossWeights::default());
    for k in 0..120 {
        let r = trainer.step();
        if k % 40 == 0 {
            println!("train step {:3}: loss {:.3e}", r.step, r.loss);
        }
    }
    let rmse = trainer.rmse();
    println!(
        "trained water DP: {:.2e} eV/atom, {:.2e} eV/Å",
        rmse.energy_per_atom, rmse.force
    );

    let dp = DeepPotential::new(trainer.model, PrecisionMode::Double);
    let g_dp = rdf_oo(&dp, "DP water MD");
    let g_ref = rdf_oo(&reference, "reference water MD");

    println!("\n# gOO(r): r, DP, reference");
    for (&(r, gd), &(_, gr)) in g_dp.iter().zip(&g_ref) {
        println!("{r:6.3}  {gd:8.4}  {gr:8.4}");
    }
    println!(
        "\nmax |gOO_DP - gOO_ref| = {:.3}",
        Rdf::max_deviation(&g_dp, &g_ref)
    );
}
