//! Scaled-down Fig 7: tensile deformation of nanocrystalline copper with
//! an empirical many-body potential (Sutton–Chen EAM), using the same
//! substrate pieces the DP-driven fig7 harness uses — Voronoi polycrystal
//! builder, anneal, affine strain, common neighbor analysis.
//!
//! Run with: `cargo run --release --example nanocrystal_tensile`

use deepmd_repro::md::analysis::cna;
use deepmd_repro::md::deform::{tensile_test, TensileOptions};
use deepmd_repro::md::integrate::{run_md, Berendsen, MdOptions};
use deepmd_repro::md::polycrystal::voronoi_fcc;
use deepmd_repro::md::potential::eam::SuttonChen;
use deepmd_repro::md::NeighborList;
use deepmd_repro::md::rng::CounterRng;

fn main() {
    let mut rng = CounterRng::new(2718);
    let mut sys = voronoi_fcc(32.0, 4, 3.615, 2.0, &mut rng);
    println!("polycrystal: {} atoms, 4 grains, 32 Å box", sys.len());

    let report = |stage: &str, sys: &deepmd_repro::md::System| {
        let nl = NeighborList::build(sys, cna::fcc_cutoff(3.615));
        let c = cna::count(sys, &nl);
        let (f, h, o) = c.fractions();
        println!(
            "{stage:>12}: fcc {:5.1}%  hcp {:5.1}%  other {:5.1}%",
            f * 100.0,
            h * 100.0,
            o * 100.0
        );
    };
    report("as built", &sys);

    let eam = SuttonChen::copper_short();
    sys.init_velocities(300.0, &mut rng);
    let opts = MdOptions {
        dt: 5.0e-4,
        skin: 1.5,
        thermostat: Some(Berendsen {
            target_t: 300.0,
            tau: 0.05,
        }),
        ..MdOptions::default()
    };
    println!("annealing at 300 K...");
    run_md(&mut sys, &eam, &opts, 400, |_| {});
    report("annealed", &sys);

    println!("pulling to 10% strain along z...");
    let topts = TensileOptions {
        axis: 2,
        total_strain: 0.10,
        n_increments: 10,
        steps_per_increment: 50,
        md: opts,
        temperature: 300.0,
    };
    let curve = tensile_test(&mut sys, &eam, &topts);
    report("10% strain", &sys);

    println!("\n# strain, stress [GPa]");
    for p in &curve {
        println!("{:6.3}  {:7.3}", p.strain, p.stress_gpa);
    }
    let peak = curve.iter().map(|p| p.stress_gpa).fold(f64::MIN, f64::max);
    println!(
        "\npeak tensile stress {peak:.2} GPa (nanocrystalline Cu experiments/MD: ~2-4 GPa)"
    );
}
