#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, then two end-to-end
# smokes that the unit tests can't cover because they need the real
# binaries:
#
#  1. Ensemble smoke — an 8-replica parallel-tempering deck (2 exchange
#     rounds) run twice through `dpmd ensemble`; the deterministic
#     CounterRng swap schedule means the two swap logs must byte-diff
#     equal, and the stdout reports must match line-for-line.
#  2. Bench gate — a fresh `bench_dpmd` run compared against the
#     committed BENCH_dpmd.json with `benchcheck --compare --tol`, which
#     also gates the ensemble row's `speedup_vs_serial` and the kernel
#     ablation row's scalar-vs-SIMD speedup (a dispatch regression that
#     silently drops the vector path fails here).
#  3. Scalar-path suite — the linalg tests rerun with `DPMD_SIMD=off`,
#     so the scalar fallback stays a tested correctness baseline on
#     hosts whose CI otherwise always takes the SIMD path.
#
# Run from anywhere; it cds to the repo root. CI calls this after the
# workspace tests, but it is also the one-command local gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# CI runs the test suite as its own step; `--skip-tests` avoids doing it
# twice there. The local one-command gate runs everything.
if [ "${1:-}" != "--skip-tests" ]; then
    cargo test -q --workspace
fi

DPMD=target/release/dpmd
BENCH=target/release/bench_dpmd
CHECK=target/release/benchcheck

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# --- 1. ensemble smoke: 8 replicas, 2 exchange rounds, repeatable ---
# steps=20 with exchange_every=10 gives exchange rounds at steps 10 and
# 20: 4 even-phase pairs then 3 odd-phase pairs = 7 attempts logged.
deck() {
    cat > "$TMP/ensemble-$1.json" <<DECK
{
  "replicas": 8,
  "system": {"kind": "fcc", "a0": 5.26, "reps": [2, 2, 2], "mass": 63.546},
  "model": {"kind": "synthetic", "seed": 7, "rcut": 4.0},
  "t_min": 100.0,
  "t_max": 400.0,
  "steps": 20,
  "dt_fs": 2.0,
  "exchange_every": 10,
  "perturb": 0.05,
  "swap_log": "$TMP/swaps-$1.jsonl",
  "seed": 1
}
DECK
}
deck a
deck b
"$DPMD" ensemble "$TMP/ensemble-a.json" > "$TMP/out-a.txt"
"$DPMD" ensemble "$TMP/ensemble-b.json" > "$TMP/out-b.txt"

attempts=$(wc -l < "$TMP/swaps-a.jsonl")
if [ "$attempts" -ne 7 ]; then
    echo "tier1: expected 7 swap attempts in the log, got $attempts" >&2
    exit 1
fi
if ! cmp -s "$TMP/swaps-a.jsonl" "$TMP/swaps-b.jsonl"; then
    echo "tier1: swap logs differ between identical decks (lost determinism)" >&2
    diff "$TMP/swaps-a.jsonl" "$TMP/swaps-b.jsonl" >&2 || true
    exit 1
fi
# stdout embeds per-run paths; compare everything but the swap-log line
if ! diff <(grep -v '^swap log:' "$TMP/out-a.txt") \
          <(grep -v '^swap log:' "$TMP/out-b.txt") > /dev/null; then
    echo "tier1: ensemble reports differ between identical decks" >&2
    exit 1
fi
grep -q '^exchange: .* accepted / 7 attempted$' "$TMP/out-a.txt" || {
    echo "tier1: ensemble report is missing the exchange summary" >&2
    exit 1
}
echo "tier1: ensemble smoke OK (8 replicas, 7 deterministic swap attempts)"

# --- 2. bench gate: fresh run vs committed baseline ---
"$BENCH" --out "$TMP/BENCH_new.json"
"$CHECK" "$TMP/BENCH_new.json"
"$CHECK" --compare BENCH_dpmd.json "$TMP/BENCH_new.json" --tol 3.0

# --- 3. scalar-path suite: SIMD dispatch forced off ---
DPMD_SIMD=off cargo test -q -p dp-linalg
echo "tier1: scalar-path linalg suite OK (DPMD_SIMD=off)"

# --- 4. chaos-soak smoke: compound faults under the invariant auditor ---
# One bounded deck: a deterministic schedule of a kill, a drop, a delay,
# and a torn per-rank shard write lands on a sharded-checkpoint run while
# conservation-class invariants are audited every 10 steps. The run must
# finish clean (recoveries are allowed, audit failures are not) inside
# 60 seconds.
cat > "$TMP/soak.json" <<DECK
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3, 3, 3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": 60,
  "thermo_every": 10,
  "seed": 7,
  "grid": [2, 1, 1],
  "checkpoint_every": 10,
  "checkpoint_path": "$TMP/soak.ckpt",
  "checkpoint_shards": true,
  "fault_comm_deadline_ms": 2000,
  "chaos_soak": {"seed": 11, "kills": 1, "drops": 1, "delays": 1, "torn_shards": 1, "max_delay_ms": 20}
}
DECK
timeout 60 "$DPMD" "$TMP/soak.json" --metrics "$TMP/soak-metrics.jsonl" > "$TMP/soak-out.txt"
grep -q '"audit.passed"' "$TMP/soak-metrics.jsonl" || {
    echo "tier1: soak smoke ran without any invariant audits" >&2
    exit 1
}
if grep -q '"audit.failed"' "$TMP/soak-metrics.jsonl"; then
    echo "tier1: soak smoke tripped the invariant auditor" >&2
    cat "$TMP/soak-out.txt" >&2
    exit 1
fi
echo "tier1: chaos-soak smoke OK (compound faults survived, all audits passed)"

echo "tier1: OK"
