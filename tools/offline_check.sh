#!/usr/bin/env bash
# Offline build-and-test for the whole workspace.
#
# This container has no crates.io access, so `cargo build` cannot resolve
# external dependencies. This script compiles the stub crates in
# tools/stubs/ (std-backed implementations of the exact API surface the
# workspace uses — see tools/stubs/README.md), builds every workspace
# crate, binary, and test target with plain rustc, and RUNS the subsets
# that don't need real JSON codecs (the serde_derive stub is a no-op, so
# anything that round-trips serde_json at runtime is compile-checked
# only). It is a verification aid, not a build system: in a networked
# environment use cargo and tier1.sh, and ignore this script.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OFFLINE_CHECK_DIR:-/tmp/dp-offline-check}"
mkdir -p "$OUT"
RUSTC="rustc --edition 2021 -O -L $OUT --out-dir $OUT"

echo "== stubs"
rustc --edition 2021 -O --crate-type proc-macro --crate-name serde_derive \
    tools/stubs/serde_derive.rs --out-dir "$OUT"
for c in rand rayon crossbeam parking_lot; do
    $RUSTC --crate-type rlib --crate-name "$c" "tools/stubs/$c.rs"
done
$RUSTC --crate-type rlib --crate-name serde tools/stubs/serde.rs \
    --extern serde_derive="$OUT/libserde_derive.so"
$RUSTC --crate-type rlib --crate-name serde_json tools/stubs/serde_json.rs \
    --extern serde="$OUT/libserde.rlib"

# Every workspace lib by crate name; unused externs are harmless, so all
# downstream targets just take the full set.
ext() { echo "--extern $1=$OUT/lib$1.rlib"; }
EXTERNS_MD="$(ext dp_obs) $(ext dp_ckpt) $(ext rand) $(ext rayon) $(ext serde)"

echo "== libs"
$RUSTC --crate-type rlib --crate-name dp_obs crates/obs/src/lib.rs
$RUSTC --crate-type rlib --crate-name dp_serve crates/serve/src/lib.rs $(ext dp_obs)
$RUSTC --crate-type rlib --crate-name dp_ckpt crates/ckpt/src/lib.rs
$RUSTC --crate-type rlib --crate-name dp_md crates/md/src/lib.rs $EXTERNS_MD
$RUSTC --crate-type rlib --crate-name dp_parallel crates/parallel/src/lib.rs \
    $EXTERNS_MD $(ext dp_md) $(ext crossbeam) $(ext parking_lot)
$RUSTC --crate-type rlib --crate-name dp_linalg crates/linalg/src/lib.rs \
    $(ext dp_obs) $(ext rayon)
$RUSTC --crate-type rlib --crate-name dp_autograd crates/autograd/src/lib.rs \
    $(ext dp_linalg)
$RUSTC --crate-type rlib --crate-name dp_nn crates/nn/src/lib.rs \
    $(ext dp_linalg) $(ext dp_autograd) $(ext rand) $(ext serde) $(ext serde_json)
$RUSTC --crate-type rlib --crate-name deepmd_core crates/core/src/lib.rs \
    $(ext dp_obs) $(ext dp_linalg) $(ext dp_nn) $(ext dp_md) $(ext rayon) \
    $(ext serde) $(ext rand)
EXTERNS_ALL="$EXTERNS_MD $(ext serde_json) $(ext crossbeam) $(ext parking_lot) \
    $(ext dp_md) $(ext dp_parallel) $(ext dp_linalg) $(ext dp_autograd) \
    $(ext dp_nn) $(ext deepmd_core)"
$RUSTC --crate-type rlib --crate-name dp_train crates/train/src/lib.rs $EXTERNS_ALL
$RUSTC --crate-type rlib --crate-name dp_replica crates/replica/src/lib.rs \
    $EXTERNS_ALL $(ext dp_train)
$RUSTC --crate-type rlib --crate-name dp_perfmodel crates/perfmodel/src/lib.rs \
    $(ext serde)
CARGO_MANIFEST_DIR="$PWD/crates/bench" \
    $RUSTC --crate-type rlib --crate-name dp_bench crates/bench/src/lib.rs \
    $EXTERNS_ALL $(ext dp_train) $(ext dp_perfmodel)
EXTERNS_ALL="$EXTERNS_ALL $(ext dp_train) $(ext dp_replica) $(ext dp_perfmodel) $(ext dp_bench) $(ext dp_serve)"
$RUSTC --crate-type rlib --crate-name deepmd_repro src/lib.rs $EXTERNS_ALL
EXTERNS_ALL="$EXTERNS_ALL $(ext deepmd_repro)"

echo "== bins and examples (compile)"
$RUSTC --crate-name dpmd src/bin/dpmd.rs $EXTERNS_ALL
for b in bench_dpmd benchcheck; do
    $RUSTC --crate-name "$b" "crates/bench/src/bin/$b.rs" $EXTERNS_ALL
done
for e in examples/*.rs; do
    $RUSTC --crate-name "ex_$(basename "$e" .rs)" "$e" $EXTERNS_ALL
done

echo "== benches (compile)"
$RUSTC --crate-type rlib --crate-name criterion tools/stubs/criterion.rs
for b in crates/*/benches/*.rs; do
    $RUSTC --crate-name "bench_$(basename "$b" .rs)" "$b" $EXTERNS_ALL $(ext criterion)
done

echo "== unit tests"
$RUSTC --test --crate-name dp_obs_t crates/obs/src/lib.rs
$RUSTC --test --crate-name dp_serve_t crates/serve/src/lib.rs $(ext dp_obs)
$RUSTC --test --crate-name dp_ckpt_t crates/ckpt/src/lib.rs
$RUSTC --test --crate-name dp_md_t crates/md/src/lib.rs $EXTERNS_MD
$RUSTC --test --crate-name dp_parallel_t crates/parallel/src/lib.rs \
    $EXTERNS_MD $(ext dp_md) $(ext crossbeam) $(ext parking_lot)
$RUSTC --test --crate-name dp_linalg_t crates/linalg/src/lib.rs \
    $(ext dp_obs) $(ext rayon)
$RUSTC --test --crate-name dp_autograd_t crates/autograd/src/lib.rs \
    $(ext dp_linalg)
$RUSTC --test --crate-name dp_nn_t crates/nn/src/lib.rs \
    $(ext dp_linalg) $(ext dp_autograd) $(ext rand) $(ext serde) $(ext serde_json)
$RUSTC --test --crate-name deepmd_core_t crates/core/src/lib.rs \
    $(ext dp_obs) $(ext dp_linalg) $(ext dp_nn) $(ext dp_md) $(ext rayon) \
    $(ext serde) $(ext rand) $(ext serde_json)
$RUSTC --test --crate-name dp_train_t crates/train/src/lib.rs $EXTERNS_ALL
$RUSTC --test --crate-name dp_replica_t crates/replica/src/lib.rs $EXTERNS_ALL
$RUSTC --test --crate-name dp_perfmodel_t crates/perfmodel/src/lib.rs $(ext serde)
CARGO_MANIFEST_DIR="$PWD/crates/bench" \
    $RUSTC --test --crate-name dp_bench_t crates/bench/src/lib.rs $EXTERNS_ALL
$RUSTC --test --crate-name deepmd_repro_t src/lib.rs $EXTERNS_ALL

echo "== integration tests (compile)"
# CARGO_BIN_EXE_dpmd is a cargo-ism; point it at the rustc-built binary so
# env!() resolves. Subprocess-driven tests still can't RUN offline (the
# deck parser needs real serde_json), so those stay compile-only.
for t in tests/*.rs crates/bench/tests/*.rs; do
    CARGO_BIN_EXE_dpmd="$OUT/dpmd" \
        $RUSTC --test --crate-name "it_$(basename "$t" .rs)" "$t" $EXTERNS_ALL
done

# The per-binary skips are exactly the JSON round-trip tests: the
# serde_derive stub is a no-op, so serialization returns Err offline.
# Everything else runs (dp-ckpt/dp-md round-trips use their own codec and
# stay in the run set).
for t in dp_obs_t dp_serve_t dp_ckpt_t dp_md_t dp_parallel_t dp_linalg_t \
         dp_autograd_t dp_nn_t deepmd_core_t dp_train_t dp_replica_t \
         dp_perfmodel_t dp_bench_t deepmd_repro_t; do
    echo "== run $t"
    case "$t" in
    dp_nn_t | deepmd_core_t)
        "$OUT/$t" --skip serde_roundtrip "$@"
        ;;
    dp_train_t)
        "$OUT/$t" --skip serde_roundtrip \
            --skip checkpoint::tests::roundtrip_is_bit_exact \
            --skip checkpoint::tests::moment_length_mismatch "$@"
        ;;
    *)
        "$OUT/$t" "$@"
        ;;
    esac
done

# Integration tests runnable without real JSON codecs: the fault drills
# drive run_parallel_md directly (checkpoints use dp-ckpt's own binary
# format), and the allocation/workspace/virial suites never serialize.
echo "== run it_fault_tolerance (library-level drills)"
"$OUT/it_fault_tolerance" --test-threads=1 \
    killed_rank corrupted torn_checkpoint dropped_message delayed_message \
    rank_failure_without retries_exhausted_is_typed dead_rank_in_allreduce \
    chaos_schedule localized_respawn torn_shard_escalates chaos_soak_recovers \
    broken_invariant_fails flight_recorder
for t in it_alloc_regression it_workspace_reuse it_parallel_dp it_virial; do
    echo "== run $t"
    "$OUT/$t"
done
# The serve e2e drives a real daemon subprocess over loopback; eval uses
# the daemon's own std-only JSON codec, so everything except the deck-job
# tests (serde_json at runtime) runs offline.
echo "== run it_serve (daemon e2e, deck-job tests skipped)"
"$OUT/it_serve" --test-threads=2 --skip job_
# The per-rank observability drill drives run_parallel_md directly with
# string-level JSONL asserts; the deck-level half needs real serde_json.
echo "== run it_imbalance (driver-level)"
"$OUT/it_imbalance" --test-threads=1 driver_level
echo "offline check OK"
