//! Offline stub for the `rand` crate (see README.md). Trait shapes match
//! rand 0.8; `StdRng` is splitmix64, not the real StdRng stream.

use std::ops::{Range, RangeInclusive};

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits in [0, 1)
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = unit_f64(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            // guard the half-open bound against rounding
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        a + unit_f64(rng) * (b - a)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let span = self.end - self.start;
        self.start + (rng.next_u64() % span as u64) as usize
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn r#gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64 — NOT the real StdRng stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}
