//! Offline stub for `criterion` (see README.md): the exact API surface
//! the workspace benches use, so they can be *compiled* (and smoke-run)
//! with plain rustc. Each benchmark body executes a handful of times
//! under coarse wall-clock timing — no warm-up, no statistics; the point
//! is keeping the bench sources type-checked offline, not measurement.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

const STUB_ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn warm_up_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
    }
}

fn run_one(group: &str, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: STUB_ITERS };
    let start = Instant::now();
    f(&mut b);
    eprintln!(
        "stub-bench {group}/{id}: {:?} for {STUB_ITERS} iters",
        start.elapsed()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
