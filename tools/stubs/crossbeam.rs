//! Offline stub for `crossbeam` (see README.md): `crossbeam::channel`
//! over `std::sync::mpsc`, preserving `recv_timeout` semantics.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}
