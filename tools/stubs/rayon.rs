//! Offline stub for `rayon` (see README.md): the `par_*` entry points the
//! workspace uses, executed sequentially via the std iterators they shadow.

pub mod prelude {
    /// Sequential wrapper standing in for rayon's `ParallelIterator`. It
    /// IS a std `Iterator` (so `enumerate`/`for_each`/`collect`/`sum`
    /// chains work unchanged), and its *inherent* `map`/`reduce` shadow
    /// the std ones so rayon's two-argument `reduce(identity, op)`
    /// type-checks after a `map`.
    pub struct ParIter<I>(pub I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;
        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }
    }

    impl<I: Iterator> ParIter<I> {
        pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }

    /// `into_par_iter()` → the plain sequential iterator, wrapped.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
        fn par_chunks_exact_mut(&mut self, size: usize) -> std::slice::ChunksExactMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
        fn par_chunks_exact_mut(&mut self, size: usize) -> std::slice::ChunksExactMut<'_, T> {
            self.chunks_exact_mut(size)
        }
    }

    pub trait ParallelIterRef<T> {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    }

    impl<T> ParallelIterRef<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
            ParIter(self.iter_mut())
        }
    }
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for rayon's pool: `install` just runs the closure
/// on the calling thread (which is exactly what a 1-thread pool does for
/// the workspace's purposes).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool)
    }
}

pub struct ThreadPool;

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

#[derive(Debug)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon stub: pool build failed")
    }
}

impl std::error::Error for BuildError {}
