//! Offline stub for `serde` (see README.md): marker traits plus the no-op
//! derive re-exports. Nothing actually serializes through these.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

// Blanket impls so every derived type satisfies the bounds without the
// no-op derive emitting anything. Safe here because the workspace has no
// manual serde impls (grep-verified) — no coherence overlap is possible.
impl<T: ?Sized> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}

pub trait Serializer {}

pub trait Deserializer<'de> {}
