//! Offline stub for `parking_lot` (see README.md): `Mutex`/`Condvar` over
//! `std::sync`, ignoring lock poisoning exactly like the real crate.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard invariant")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard invariant")
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard invariant");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wait while `condition` is true, up to `timeout`.
    pub fn wait_while_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        condition: impl FnMut(&mut T) -> bool,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard invariant");
        let (g, res) = self
            .0
            .wait_timeout_while(g, timeout, condition)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}
