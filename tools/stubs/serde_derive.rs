//! Offline stub for `serde_derive` (see README.md): no-op derives so
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes parse.

extern crate proc_macro;

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
