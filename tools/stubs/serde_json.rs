//! Offline stub for `serde_json` (see README.md). COMPILE-ONLY for the
//! deserialization half: the no-op derive stub generates no real codecs,
//! so `from_str`/`from_slice` always return `Err` and `to_string`/`to_vec`
//! return a placeholder. Code paths that parse or emit real JSON cannot be
//! *run* against this stub — they are only type-checked.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error("cannot deserialize offline".into()))
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T, Error> {
    Err(Error("cannot deserialize offline".into()))
}

pub fn to_string<T: serde::Serialize + ?Sized>(_v: &T) -> Result<String, Error> {
    Err(Error("cannot serialize offline".into()))
}

pub fn to_vec<T: serde::Serialize + ?Sized>(_v: &T) -> Result<Vec<u8>, Error> {
    Err(Error("cannot serialize offline".into()))
}

pub type Map = BTreeMap<String, Value>;

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
