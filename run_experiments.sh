#!/bin/sh
# Regenerate every table/figure output into results/ (see EXPERIMENTS.md).
set -x
mkdir -p results
cargo run --release -q -p dp-bench --bin train_models
for b in table1 table3 table4 fig3 fig4 fig5 fig6 fig7 mixed_precision speedup setup_time; do
  cargo run --release -q -p dp-bench --bin "$b" > "results/$b.txt" 2>&1
done
