//! The `dpmd` application layer: run an MD simulation from a JSON input
//! deck, the way LAMMPS drives DeePMD-kit from a script.
//!
//! ```json
//! {
//!   "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
//!   "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
//!   "temperature": 40.0,
//!   "thermostat": null,
//!   "dt_fs": 2.0,
//!   "steps": 200,
//!   "thermo_every": 20,
//!   "trajectory": "run.xyz",
//!   "seed": 1
//! }
//! ```
//!
//! `potential.kind` may also be `"deep_potential"` with a `"model"` path to
//! a JSON model produced by training (see `DpModelData`), or
//! `"sutton_chen_cu"` / `"water_reference"`.

use deepmd_core::model::{DpModel, DpModelData};
use deepmd_core::{DeepPotential, PrecisionMode};
use dp_ckpt::Rotation;
use dp_md::checkpoint::MdCheckpoint;
use dp_md::integrate::{
    run_md_resumable, Berendsen, CheckpointSink, MdOptions, MdProgress, ThermoSample,
};
use dp_md::potential::eam::SuttonChen;
use dp_md::potential::pair::{LennardJones, PairTable};
use dp_md::rng::CounterRng;
use dp_md::{lattice, Potential, System};
use serde::Deserialize;
use std::io::Write as _;

/// Which atoms to simulate.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SystemSpec {
    /// fcc crystal with lattice constant `a0`, `reps` unit cells per axis.
    Fcc { a0: f64, reps: [usize; 3], mass: f64 },
    /// Water molecules on a cubic molecular lattice.
    Water { mols_per_axis: [usize; 3], spacing: f64 },
}

/// Which potential drives the forces.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PotentialSpec {
    LennardJones { eps: f64, sigma: f64, rcut: f64 },
    SuttonChenCu { short: bool },
    WaterReference { rcut: f64 },
    /// A trained Deep Potential model file (JSON `DpModelData`).
    DeepPotential {
        model: String,
        #[serde(default)]
        mixed_precision: bool,
    },
}

/// The whole input deck.
#[derive(Debug, Clone, Deserialize)]
pub struct AppConfig {
    pub system: SystemSpec,
    pub potential: PotentialSpec,
    /// Initial (and thermostat target) temperature, K.
    pub temperature: f64,
    /// `"berendsen"` or null/absent for NVE.
    #[serde(default)]
    pub thermostat: Option<String>,
    /// Time step in femtoseconds.
    pub dt_fs: f64,
    pub steps: usize,
    #[serde(default = "default_thermo_every")]
    pub thermo_every: usize,
    /// Optional extended-XYZ trajectory output path.
    #[serde(default)]
    pub trajectory: Option<String>,
    #[serde(default)]
    pub seed: u64,
    /// Steps between checkpoints (0 = no checkpointing).
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Rotation base path the checkpoints are written to (older
    /// generations get `.1`, `.2`, ... suffixes).
    #[serde(default)]
    pub checkpoint_path: Option<String>,
    /// Checkpoint generations retained.
    #[serde(default = "default_checkpoint_keep")]
    pub checkpoint_keep: usize,
    /// Resume from this checkpoint (rotation base path) instead of
    /// building a fresh system; corrupt generations fall back to older
    /// ones. Also settable as `dpmd --resume <file>`.
    #[serde(default)]
    pub resume: Option<String>,
    /// Write a chrome://tracing JSON trace of the run here. Also settable
    /// as `dpmd --trace <file>`.
    #[serde(default)]
    pub trace_path: Option<String>,
    /// Write per-step JSONL metrics (s/step/atom, achieved GFLOPS) here.
    /// Also settable as `dpmd --metrics <file>`.
    #[serde(default)]
    pub metrics_path: Option<String>,
}

fn default_thermo_every() -> usize {
    20
}

fn default_checkpoint_keep() -> usize {
    3
}

/// What a run produced.
#[derive(Debug)]
pub struct RunSummary {
    pub thermo: Vec<ThermoSample>,
    pub final_system: System,
    pub potential_name: &'static str,
}

fn build_system(spec: &SystemSpec) -> System {
    match *spec {
        SystemSpec::Fcc { a0, reps, mass } => lattice::fcc(a0, reps, mass),
        SystemSpec::Water {
            mols_per_axis,
            spacing,
        } => lattice::water_box(mols_per_axis, spacing),
    }
}

fn build_potential(spec: &PotentialSpec) -> Result<Box<dyn Potential>, String> {
    Ok(match spec {
        PotentialSpec::LennardJones { eps, sigma, rcut } => {
            Box::new(LennardJones::new(*eps, *sigma, *rcut))
        }
        PotentialSpec::SuttonChenCu { short } => Box::new(if *short {
            SuttonChen::copper_short()
        } else {
            SuttonChen::copper()
        }),
        PotentialSpec::WaterReference { rcut } => {
            Box::new(PairTable::water_reference().with_cutoff(*rcut))
        }
        PotentialSpec::DeepPotential {
            model,
            mixed_precision,
        } => {
            let text = std::fs::read_to_string(model)
                .map_err(|e| format!("cannot read model {model}: {e}"))?;
            let data: DpModelData =
                serde_json::from_str(&text).map_err(|e| format!("bad model {model}: {e}"))?;
            let mode = if *mixed_precision {
                PrecisionMode::Mixed
            } else {
                PrecisionMode::Double
            };
            Box::new(DeepPotential::new(DpModel::from_data(&data), mode))
        }
    })
}

/// Species labels for trajectory output.
fn type_names(spec: &SystemSpec) -> Vec<&'static str> {
    match spec {
        SystemSpec::Fcc { .. } => vec!["Cu"],
        SystemSpec::Water { .. } => vec!["O", "H"],
    }
}

/// Scan an existing extended-XYZ trajectory for the highest `step=N`
/// comment, so an appending resume never duplicates a frame.
fn last_trajectory_step(path: &str) -> Option<usize> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(|line| {
            let at = line.rfind("step=")?;
            line[at + "step=".len()..]
                .split_whitespace()
                .next()?
                .parse::<usize>()
                .ok()
        })
        .max()
}

/// Run the deck; `log` receives one line per thermo sample.
pub fn run(cfg: &AppConfig, mut log: impl FnMut(&str)) -> Result<RunSummary, String> {
    let pot = build_potential(&cfg.potential)?;

    // Fresh start, or restore atoms + step counter + RNG position from the
    // newest valid checkpoint generation.
    let (mut sys, progress) = match &cfg.resume {
        Some(path) => {
            let rot = Rotation::new(path, cfg.checkpoint_keep);
            let (snap, from) = MdCheckpoint::load(&rot)
                .map_err(|e| format!("cannot resume from {path}: {e}"))?;
            log(&format!(
                "resuming from {} (step {}, {} atoms)",
                from.display(),
                snap.progress.step,
                snap.positions.len()
            ));
            snap.restore()
        }
        None => {
            let mut sys = build_system(&cfg.system);
            let mut rng = CounterRng::new(cfg.seed);
            sys.init_velocities(cfg.temperature, &mut rng);
            (sys, MdProgress::default())
        }
    };
    if progress.step > cfg.steps {
        return Err(format!(
            "checkpoint is at step {}, but the deck only runs to step {}",
            progress.step, cfg.steps
        ));
    }
    let resuming = cfg.resume.is_some();

    let halo_limit = sys.cell.max_cutoff();
    if pot.cutoff() > halo_limit {
        return Err(format!(
            "potential cutoff {} exceeds the minimum-image limit {halo_limit:.3} of this box",
            pot.cutoff()
        ));
    }

    let skin = ((halo_limit - pot.cutoff()) * 0.9).clamp(0.0, 2.0);
    let opts = MdOptions {
        dt: cfg.dt_fs * 1e-3,
        skin,
        thermostat: match cfg.thermostat.as_deref() {
            None => None,
            Some("berendsen") => Some(Berendsen {
                target_t: cfg.temperature,
                tau: 0.1,
            }),
            Some(other) => return Err(format!("unknown thermostat '{other}'")),
        },
        thermo_every: cfg.thermo_every,
        ..MdOptions::default()
    };

    // A resume APPENDS to an existing trajectory instead of truncating it,
    // and a step-number guard skips any frame the interrupted run already
    // wrote (the newest checkpoint can be older than the newest frame).
    let mut last_frame_step: Option<usize> = None;
    let mut traj = match &cfg.trajectory {
        Some(path) => {
            let file = if resuming {
                last_frame_step = last_trajectory_step(path);
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
            } else {
                std::fs::File::create(path)
            };
            Some(file.map_err(|e| format!("cannot open {path}: {e}"))?)
        }
        None => None,
    };
    let names = type_names(&cfg.system);

    // Checkpoints write to `checkpoint_path`, or continue the rotation
    // being resumed from when only `resume` is given.
    let ckpt_base = cfg.checkpoint_path.clone().or_else(|| cfg.resume.clone());
    let rotation = match (&ckpt_base, cfg.checkpoint_every) {
        (_, 0) => None,
        (None, _) => {
            return Err(
                "checkpoint_every is set but there is no checkpoint_path to write to".into(),
            )
        }
        (Some(base), _) => Some(Rotation::new(base, cfg.checkpoint_keep)),
    };

    log(&format!(
        "dpmd: {} atoms, potential {}, dt {} fs, steps {}..{}",
        sys.len(),
        pot.name(),
        cfg.dt_fs,
        progress.step,
        cfg.steps
    ));

    let mut ckpt_error: Option<String> = None;
    let mut write_frame_dedup = |f: &mut std::fs::File,
                                 sys: &System,
                                 step: usize,
                                 last: &mut Option<usize>|
     -> std::io::Result<()> {
        if last.map_or(false, |l| step <= l) {
            return Ok(());
        }
        dp_md::xyz::write_frame(f, sys, &names, &format!("step={step}"))?;
        f.flush().ok();
        *last = Some(step);
        Ok(())
    };

    let mut save = |sys: &System, p: MdProgress| {
        if let Some(rot) = &rotation {
            let snap = MdCheckpoint::capture(sys, p);
            if let Err(e) = snap.save(rot) {
                eprintln!(
                    "warning: checkpoint write at step {} failed ({e}); run continues",
                    p.step
                );
            }
        }
        if let Some(f) = traj.as_mut() {
            if let Err(e) = write_frame_dedup(f, sys, p.step, &mut last_frame_step) {
                ckpt_error.get_or_insert(format!("trajectory write failed: {e}"));
            }
        }
    };
    let sink = (cfg.checkpoint_every > 0).then_some(CheckpointSink {
        every: cfg.checkpoint_every,
        save: &mut save,
    });

    // Observability: enable spans/metrics only when the deck asks for them,
    // so plain runs keep the near-free disabled path.
    let obs_on = cfg.trace_path.is_some() || cfg.metrics_path.is_some();
    if obs_on {
        if let Some(path) = &cfg.metrics_path {
            dp_obs::metrics::install(path)
                .map_err(|e| format!("cannot open metrics file {path}: {e}"))?;
        }
        if cfg.trace_path.is_some() {
            dp_obs::trace::start_recording(dp_obs::trace::DEFAULT_CAPACITY);
        }
        dp_obs::enable();
    }

    let mut thermo_lines = Vec::new();
    let run_result = run_md_resumable(
        &mut sys,
        pot.as_ref(),
        &opts,
        cfg.steps,
        progress,
        |s| {
            thermo_lines.push(*s);
        },
        sink,
    );
    drop(save);

    if obs_on {
        dp_obs::disable();
        if let Some(path) = &cfg.trace_path {
            let dropped = dp_obs::trace::dropped_events();
            let events = dp_obs::trace::stop_recording();
            dp_obs::trace::write_chrome_trace(path, &events)
                .map_err(|e| format!("cannot write trace {path}: {e}"))?;
            log(&format!(
                "trace: {} events -> {path}{}",
                events.len(),
                if dropped > 0 {
                    format!(" ({dropped} oldest dropped)")
                } else {
                    String::new()
                }
            ));
        }
        if cfg.metrics_path.is_some() {
            if let Some(res) = dp_obs::metrics::uninstall() {
                res.map_err(|e| format!("metrics write failed: {e}"))?;
            }
        }
    }

    if let Some(e) = ckpt_error {
        return Err(e);
    }
    for s in &run_result.thermo {
        log(&format!(
            "step {:6}  PE {:+.4} eV  KE {:.4} eV  T {:6.1} K  P {:+.0} bar",
            s.step, s.potential_energy, s.kinetic_energy, s.temperature, s.pressure
        ));
    }
    if let Some(f) = traj.as_mut() {
        write_frame_dedup(f, &sys, cfg.steps, &mut last_frame_step)
            .map_err(|e| format!("trajectory write failed: {e}"))?;
    }
    log(&format!(
        "done: {} evaluations, {} neighbor rebuilds, loop {:?} ({:.2e} s/step/atom)",
        run_result.evaluations,
        run_result.neighbor_rebuilds,
        run_result.loop_time,
        run_result.time_to_solution(sys.len())
    ));

    Ok(RunSummary {
        thermo: run_result.thermo,
        final_system: sys,
        potential_name: pot.name(),
    })
}

/// Parse a JSON input deck.
pub fn parse_config(text: &str) -> Result<AppConfig, String> {
    serde_json::from_str(text).map_err(|e| format!("bad input deck: {e}"))
}
