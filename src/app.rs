//! The `dpmd` application layer: run an MD simulation from a JSON input
//! deck, the way LAMMPS drives DeePMD-kit from a script.
//!
//! ```json
//! {
//!   "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
//!   "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
//!   "temperature": 40.0,
//!   "thermostat": null,
//!   "dt_fs": 2.0,
//!   "steps": 200,
//!   "thermo_every": 20,
//!   "trajectory": "run.xyz",
//!   "seed": 1
//! }
//! ```
//!
//! `potential.kind` may also be `"deep_potential"` with a `"model"` path to
//! a JSON model produced by training (see `DpModelData`), or
//! `"sutton_chen_cu"` / `"water_reference"`.
//!
//! Adding `"grid": [nx, ny, nz]` runs the deck on the fault-tolerant
//! parallel driver instead of the serial integrator: rank threads under a
//! supervisor that recovers from rank failures via the checkpoint rotation
//! (see `dp_parallel`). The `fault_*` keys inject deterministic faults into
//! such a run for recovery drills. `"report_every": N` adds a live
//! load-balance heartbeat, and `"imbalance_report": true` prints the §7.3
//! cross-rank compute/comm/wait breakdown after the run.
//!
//! Every failure is a typed [`AppError`]; `dpmd` maps the variants to
//! distinct process exit codes (see [`AppError::exit_code`]).

use deepmd_core::model::{DpModel, DpModelData};
use deepmd_core::{DeepPotential, PrecisionMode};
use dp_ckpt::Rotation;
use dp_md::checkpoint::MdCheckpoint;
use dp_md::integrate::{
    run_md_resumable, Berendsen, CheckpointSink, MdOptions, MdProgress, ThermoSample,
};
use dp_md::potential::eam::SuttonChen;
use dp_md::potential::pair::{LennardJones, PairTable};
use dp_md::rng::CounterRng;
use dp_md::{lattice, Potential, System};
use dp_obs::report::{RooflineReport, RooflineRow};
use dp_obs::ImbalanceReport;
use dp_parallel::{
    expand_chaos, expand_soak, run_parallel_md, BreakInvariant, ChaosSpec, DelaySpec, FaultPlan,
    KillSpec, MsgSelector, ParallelCkpt, ParallelOptions, RunError, SoakSpec,
};
use dp_perfmodel::{Roofline, SystemModel};
use serde::Deserialize;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Which atoms to simulate.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SystemSpec {
    /// fcc crystal with lattice constant `a0`, `reps` unit cells per axis.
    Fcc {
        a0: f64,
        reps: [usize; 3],
        mass: f64,
    },
    /// Water molecules on a cubic molecular lattice.
    Water {
        mols_per_axis: [usize; 3],
        spacing: f64,
    },
}

/// Which potential drives the forces.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PotentialSpec {
    LennardJones {
        eps: f64,
        sigma: f64,
        rcut: f64,
    },
    SuttonChenCu {
        short: bool,
    },
    WaterReference {
        rcut: f64,
    },
    /// A trained Deep Potential model file (JSON `DpModelData`).
    DeepPotential {
        model: String,
        #[serde(default)]
        mixed_precision: bool,
    },
}

/// The whole input deck. Unknown keys are rejected (a typo like
/// `"checkpont_every"` must fail loudly, not silently change the run).
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AppConfig {
    pub system: SystemSpec,
    pub potential: PotentialSpec,
    /// Initial (and thermostat target) temperature, K.
    pub temperature: f64,
    /// `"berendsen"` or null/absent for NVE.
    #[serde(default)]
    pub thermostat: Option<String>,
    /// Time step in femtoseconds.
    pub dt_fs: f64,
    pub steps: usize,
    #[serde(default = "default_thermo_every")]
    pub thermo_every: usize,
    /// Optional extended-XYZ trajectory output path.
    #[serde(default)]
    pub trajectory: Option<String>,
    #[serde(default)]
    pub seed: u64,
    /// Steps between checkpoints (0 = no checkpointing).
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Rotation base path the checkpoints are written to (older
    /// generations get `.1`, `.2`, ... suffixes).
    #[serde(default)]
    pub checkpoint_path: Option<String>,
    /// Checkpoint generations retained.
    #[serde(default = "default_checkpoint_keep")]
    pub checkpoint_keep: usize,
    /// Parallel runs only: also write one per-rank shard next to every
    /// checkpoint generation, enabling *localized* recovery — a dead rank
    /// is rebuilt in place from its shard and the survivors' state, with
    /// no global reload (see `dp_parallel`'s fault-tolerance docs).
    #[serde(default)]
    pub checkpoint_shards: bool,
    /// Resume from this checkpoint (rotation base path) instead of
    /// building a fresh system; corrupt generations fall back to older
    /// ones. Also settable as `dpmd --resume <file>`.
    #[serde(default)]
    pub resume: Option<String>,
    /// Write a chrome://tracing JSON trace of the run here. Also settable
    /// as `dpmd --trace <file>`.
    #[serde(default)]
    pub trace_path: Option<String>,
    /// Write per-step JSONL metrics (s/step/atom, achieved GFLOPS) here.
    /// Also settable as `dpmd --metrics <file>`.
    #[serde(default)]
    pub metrics_path: Option<String>,
    /// Rank grid `[nx, ny, nz]`: run on the fault-tolerant parallel driver
    /// with nx*ny*nz rank threads. Absent = serial integrator.
    #[serde(default)]
    pub grid: Option<[usize; 3]>,
    /// Parallel runs only: allreduce thermo output every step instead of
    /// deferring reductions to the output stride.
    #[serde(default)]
    pub blocking_reduce: bool,
    /// Fault injection (parallel runs only): kill this rank...
    #[serde(default)]
    pub fault_kill_rank: Option<usize>,
    /// ...at this absolute step. Both or neither must be set.
    #[serde(default)]
    pub fault_kill_step: Option<usize>,
    /// Re-kill in every recovered epoch (exhausts the retry budget; used
    /// to drill the typed-error exit path).
    #[serde(default)]
    pub fault_kill_every_epoch: bool,
    /// Silently drop the `seq`-th message from rank `from` to rank `to`:
    /// `[from, to, seq]`.
    #[serde(default)]
    pub fault_drop_msg: Option<[u64; 3]>,
    /// Delay one message: `[from, to, seq, millis]`. Survivable if the
    /// delay is shorter than the comm deadline.
    #[serde(default)]
    pub fault_delay_msg_ms: Option<[u64; 4]>,
    /// Truncate the checkpoint generation written at this step (torn
    /// write; the rotation must fall back on reload).
    #[serde(default)]
    pub fault_torn_ckpt_step: Option<usize>,
    /// Flip a byte in the checkpoint generation written at this step
    /// (silent corruption; the CRC must reject it on reload).
    #[serde(default)]
    pub fault_corrupt_ckpt_step: Option<usize>,
    /// Chaos mode (parallel runs only): expand a seed into a deterministic
    /// randomized schedule of rank kills, message drops, and message delays
    /// spread over the run — a long-soak drill in one deck key. Kills and
    /// drops require checkpointing; the schedule is constructed so every
    /// fault is survivable (see `dp_parallel::chaos`), and the retry budget
    /// is automatically sized to cover it.
    #[serde(default)]
    pub fault_chaos: Option<ChaosConfig>,
    /// Soak mode (parallel runs only): `fault_chaos` plus torn per-rank
    /// shard writes, with the periodic invariant auditor switched on —
    /// the long-haul compound-fault drill in one deck key. Requires
    /// checkpointing; `checkpoint_shards` should be on for the localized
    /// tier to be exercised.
    #[serde(default)]
    pub chaos_soak: Option<SoakConfig>,
    /// Test-only hook `[rank, step]`: corrupt that rank's report in the
    /// first invariant audit at or after `step`, proving the auditor
    /// fails fast with a typed error (exit 6). Never touches real state.
    #[serde(default)]
    pub fault_break_invariant: Option<[usize; 2]>,
    /// Parallel runs only: audit conservation-class invariants
    /// (atom-count conservation, ghost/owner consistency, step-counter
    /// uniformity, seq-gap-free comm) every this many steps. 0 = off;
    /// `chaos_soak` supplies its own stride when this is 0.
    #[serde(default)]
    pub audit_every: usize,
    /// How many failed epochs the supervisor may recover from before the
    /// run fails with a typed error.
    #[serde(default = "default_max_retries")]
    pub fault_max_retries: usize,
    /// Receive/reduce deadline in milliseconds (default 30000): how long a
    /// rank waits for a peer before declaring it dead.
    #[serde(default)]
    pub fault_comm_deadline_ms: Option<u64>,
    /// Parallel runs only: every `report_every` steps the ranks gather
    /// per-phase time deltas and rank 0 prints a live load-balance
    /// heartbeat (also an `imbalance_heartbeat` metrics event). 0 = off.
    #[serde(default)]
    pub report_every: usize,
    /// Parallel runs only: print the §7.3-style cross-rank breakdown
    /// table (compute/comm/wait, imbalance ratios, achieved vs. modeled
    /// GFLOPS) after the run. Also settable as `dpmd --imbalance-report`.
    #[serde(default)]
    pub imbalance_report: bool,
    /// Parallel runs only: print the roofline attribution table after the
    /// run — per-phase achieved vs. modeled GFLOPS, arithmetic intensity,
    /// and the memory/compute-bound verdict against the paper's V100
    /// roofline. Also settable as `dpmd --profile-report`.
    #[serde(default)]
    pub profile_report: bool,
    /// Write a Prometheus text-format (0.0.4) snapshot of every counter,
    /// histogram, and published gauge here after the run. Also settable
    /// as `dpmd --prom-dump <file>`.
    #[serde(default)]
    pub prom_dump: Option<String>,
}

/// The `fault_chaos` deck key: how much randomized fault traffic to
/// schedule. The seed *is* the schedule — same seed, same deck, same
/// faults, bit-exact — so a chaos soak that fails is replayable.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ChaosConfig {
    /// Deterministic schedule seed.
    pub seed: u64,
    /// Rank kills to schedule (each after a checkpoint exists).
    #[serde(default)]
    pub kills: usize,
    /// Messages to silently drop.
    #[serde(default)]
    pub drops: usize,
    /// Messages to delay.
    #[serde(default)]
    pub delays: usize,
    /// Upper bound on each scheduled delay, milliseconds.
    #[serde(default = "default_chaos_delay_ms")]
    pub max_delay_ms: u64,
}

fn default_chaos_delay_ms() -> u64 {
    50
}

/// The `chaos_soak` deck key: a compound-fault soak schedule. Like
/// [`ChaosConfig`] the seed *is* the schedule, so a failing soak replays
/// bit-exactly; on top of kills/drops/delays it schedules torn per-rank
/// shard writes and turns the periodic invariant auditor on.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SoakConfig {
    /// Deterministic schedule seed.
    pub seed: u64,
    /// Rank kills to schedule (each after a checkpoint exists).
    #[serde(default)]
    pub kills: usize,
    /// Messages to silently drop.
    #[serde(default)]
    pub drops: usize,
    /// Messages to delay.
    #[serde(default)]
    pub delays: usize,
    /// Per-rank shard writes to tear (forces the global-fallback tier when
    /// a kill later lands on a rank whose newest shard is torn).
    #[serde(default)]
    pub torn_shards: usize,
    /// Upper bound on each scheduled delay, milliseconds.
    #[serde(default = "default_chaos_delay_ms")]
    pub max_delay_ms: u64,
    /// Invariant audit stride the soak runs under (steps).
    #[serde(default = "default_soak_audit_every")]
    pub audit_every: usize,
}

fn default_soak_audit_every() -> usize {
    10
}

fn default_thermo_every() -> usize {
    20
}

fn default_checkpoint_keep() -> usize {
    3
}

fn default_max_retries() -> usize {
    2
}

/// Why a run could not start or finish. Variants map to distinct `dpmd`
/// exit codes so scripts can tell a bad deck from a fault-tolerance
/// failure without parsing stderr.
#[derive(Debug)]
pub enum AppError {
    /// The input deck is malformed or internally inconsistent (exit 2).
    Deck(String),
    /// A file could not be read or written (exit 3).
    Io(String),
    /// A checkpoint could not be loaded, or does not fit the deck (exit 4).
    Ckpt(String),
    /// The supervised parallel run failed for good — rank failure with no
    /// checkpointing, unrecoverable checkpoints, or retries exhausted
    /// (exit 5). An invariant-audit failure ([`RunError::Audit`]) is its
    /// own class: exit 6, because it means the run's physics can no longer
    /// be trusted, not merely that a resource died.
    Fault(RunError),
    /// Any other runtime failure (exit 1).
    Run(String),
}

impl AppError {
    /// The process exit code `dpmd` reports for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            AppError::Deck(_) => 2,
            AppError::Io(_) => 3,
            AppError::Ckpt(_) => 4,
            AppError::Fault(RunError::Audit { .. }) => 6,
            AppError::Fault(_) => 5,
            AppError::Run(_) => 1,
        }
    }
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Deck(msg) | AppError::Io(msg) | AppError::Ckpt(msg) | AppError::Run(msg) => {
                write!(f, "{msg}")
            }
            AppError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AppError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

/// What a run produced.
#[derive(Debug)]
pub struct RunSummary {
    pub thermo: Vec<ThermoSample>,
    pub final_system: System,
    pub potential_name: &'static str,
    /// Failed epochs the parallel supervisor recovered from via global
    /// checkpoint reload (0 for serial runs and clean parallel runs).
    pub recoveries: usize,
    /// Rank failures recovered *in place* — dead rank rebuilt from its
    /// per-rank shard and respawned while the survivors waited at the
    /// step barrier, no global reload.
    pub local_recoveries: usize,
    /// Highest recovery tier the run needed: `"none"`, `"local"`
    /// (localized respawn only), or `"global"` (at least one full
    /// checkpoint reload).
    pub recovery_tier: &'static str,
    /// §7.3 cross-rank phase breakdown with achieved and (when the system
    /// has a paper calibration) modeled GFLOPS columns. `None` for serial
    /// runs.
    pub imbalance: Option<ImbalanceReport>,
}

pub(crate) fn build_system(spec: &SystemSpec) -> System {
    match *spec {
        SystemSpec::Fcc { a0, reps, mass } => lattice::fcc(a0, reps, mass),
        SystemSpec::Water {
            mols_per_axis,
            spacing,
        } => lattice::water_box(mols_per_axis, spacing),
    }
}

pub(crate) fn build_potential(spec: &PotentialSpec) -> Result<Box<dyn Potential>, AppError> {
    Ok(match spec {
        PotentialSpec::LennardJones { eps, sigma, rcut } => {
            Box::new(LennardJones::new(*eps, *sigma, *rcut))
        }
        PotentialSpec::SuttonChenCu { short } => Box::new(if *short {
            SuttonChen::copper_short()
        } else {
            SuttonChen::copper()
        }),
        PotentialSpec::WaterReference { rcut } => {
            Box::new(PairTable::water_reference().with_cutoff(*rcut))
        }
        PotentialSpec::DeepPotential {
            model,
            mixed_precision,
        } => {
            let text = std::fs::read_to_string(model)
                .map_err(|e| AppError::Io(format!("cannot read model {model}: {e}")))?;
            let data: DpModelData = serde_json::from_str(&text)
                .map_err(|e| AppError::Deck(format!("bad model {model}: {e}")))?;
            let mode = if *mixed_precision {
                PrecisionMode::Mixed
            } else {
                PrecisionMode::Double
            };
            Box::new(DeepPotential::new(DpModel::from_data(&data), mode))
        }
    })
}

/// Species labels for trajectory output.
fn type_names(spec: &SystemSpec) -> Vec<&'static str> {
    match spec {
        SystemSpec::Fcc { .. } => vec!["Cu"],
        SystemSpec::Water { .. } => vec!["O", "H"],
    }
}

/// Scan an existing extended-XYZ trajectory for the highest `step=N`
/// comment, so an appending resume never duplicates a frame.
fn last_trajectory_step(path: &str) -> Option<usize> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(|line| {
            let at = line.rfind("step=")?;
            line[at + "step=".len()..]
                .split_whitespace()
                .next()?
                .parse::<usize>()
                .ok()
        })
        .max()
}

/// Assemble the deterministic fault plan from the deck's `fault_*` keys;
/// `None` when no fault key is set (the hot path stays branch-free).
fn build_fault_plan(cfg: &AppConfig, grid: [usize; 3]) -> Result<Option<FaultPlan>, AppError> {
    let n_ranks = grid[0] * grid[1] * grid[2];
    let mut plan = FaultPlan::default();
    match (cfg.fault_kill_rank, cfg.fault_kill_step) {
        (None, None) => {}
        (Some(rank), Some(step)) => {
            if rank >= n_ranks {
                return Err(AppError::Deck(format!(
                    "fault_kill_rank {rank} is out of range for grid {grid:?} ({n_ranks} ranks)"
                )));
            }
            plan.kill = Some(KillSpec {
                rank,
                step,
                every_epoch: cfg.fault_kill_every_epoch,
            });
        }
        _ => {
            return Err(AppError::Deck(
                "fault_kill_rank and fault_kill_step must be set together".into(),
            ))
        }
    }
    if let Some([from, to, seq]) = cfg.fault_drop_msg {
        plan.drop_msg = Some(MsgSelector {
            from: from as usize,
            to: to as usize,
            seq,
        });
    }
    if let Some([from, to, seq, ms]) = cfg.fault_delay_msg_ms {
        plan.delay_msg = Some(DelaySpec {
            msg: MsgSelector {
                from: from as usize,
                to: to as usize,
                seq,
            },
            delay: Duration::from_millis(ms),
        });
    }
    plan.torn_ckpt_step = cfg.fault_torn_ckpt_step;
    plan.corrupt_ckpt_step = cfg.fault_corrupt_ckpt_step;
    if let Some([rank, step]) = cfg.fault_break_invariant {
        if rank >= n_ranks {
            return Err(AppError::Deck(format!(
                "fault_break_invariant rank {rank} is out of range for grid {grid:?} ({n_ranks} ranks)"
            )));
        }
        plan.break_invariant = Some(BreakInvariant { rank, step });
    }
    if let Some(chaos) = &cfg.fault_chaos {
        let spec = ChaosSpec {
            seed: chaos.seed,
            kills: chaos.kills,
            drops: chaos.drops,
            delays: chaos.delays,
            max_delay_ms: chaos.max_delay_ms,
        };
        let expanded = expand_chaos(&spec, n_ranks, cfg.steps, cfg.checkpoint_every)
            .map_err(|e| AppError::Deck(format!("fault_chaos: {e}")))?;
        plan.kills.extend(expanded.kills);
        plan.drops.extend(expanded.drops);
        plan.delays.extend(expanded.delays);
    }
    if let Some(soak) = &cfg.chaos_soak {
        let spec = SoakSpec {
            seed: soak.seed,
            kills: soak.kills,
            drops: soak.drops,
            delays: soak.delays,
            torn_shards: soak.torn_shards,
            max_delay_ms: soak.max_delay_ms,
            audit_every: soak.audit_every,
        };
        let expanded = expand_soak(&spec, n_ranks, cfg.steps, cfg.checkpoint_every)
            .map_err(|e| AppError::Deck(format!("chaos_soak: {e}")))?;
        plan.kills.extend(expanded.kills);
        plan.drops.extend(expanded.drops);
        plan.delays.extend(expanded.delays);
        plan.torn_shards.extend(expanded.torn_shards);
    }
    Ok((!plan.is_empty()).then_some(plan))
}

fn any_fault_key(cfg: &AppConfig) -> bool {
    cfg.fault_kill_rank.is_some()
        || cfg.fault_kill_step.is_some()
        || cfg.fault_drop_msg.is_some()
        || cfg.fault_delay_msg_ms.is_some()
        || cfg.fault_torn_ckpt_step.is_some()
        || cfg.fault_corrupt_ckpt_step.is_some()
        || cfg.fault_chaos.is_some()
        || cfg.chaos_soak.is_some()
        || cfg.fault_break_invariant.is_some()
}

/// Run the deck; `log` receives one line per thermo sample.
pub fn run(cfg: &AppConfig, mut log: impl FnMut(&str)) -> Result<RunSummary, AppError> {
    let pot = build_potential(&cfg.potential)?;
    if cfg.grid.is_none() && any_fault_key(cfg) {
        return Err(AppError::Deck(
            "fault_* keys require a parallel run: set \"grid\": [nx, ny, nz]".into(),
        ));
    }
    if cfg.grid.is_none() && (cfg.report_every > 0 || cfg.imbalance_report || cfg.profile_report) {
        return Err(AppError::Deck(
            "report_every/imbalance_report/profile_report require a parallel run: \
             set \"grid\": [nx, ny, nz]"
                .into(),
        ));
    }
    if cfg.grid.is_none() && (cfg.checkpoint_shards || cfg.audit_every > 0) {
        return Err(AppError::Deck(
            "checkpoint_shards/audit_every require a parallel run: set \"grid\": [nx, ny, nz]"
                .into(),
        ));
    }
    if cfg.checkpoint_shards && cfg.checkpoint_every == 0 {
        return Err(AppError::Deck(
            "checkpoint_shards is set but checkpoint_every is 0 (no checkpoints to shard)".into(),
        ));
    }

    // Fresh start, or restore atoms + step counter + RNG position from the
    // newest valid checkpoint generation.
    let (mut sys, progress) = match &cfg.resume {
        Some(path) => {
            let rot = Rotation::new(path, cfg.checkpoint_keep);
            let (snap, from) = MdCheckpoint::load(&rot)
                .map_err(|e| AppError::Ckpt(format!("cannot resume from {path}: {e}")))?;
            log(&format!(
                "resuming from {} (step {}, {} atoms)",
                from.display(),
                snap.progress.step,
                snap.positions.len()
            ));
            snap.restore()
        }
        None => {
            let mut sys = build_system(&cfg.system);
            let mut rng = CounterRng::new(cfg.seed);
            sys.init_velocities(cfg.temperature, &mut rng);
            (sys, MdProgress::default())
        }
    };
    if progress.step > cfg.steps {
        return Err(AppError::Ckpt(format!(
            "checkpoint is at step {}, but the deck only runs to step {}",
            progress.step, cfg.steps
        )));
    }
    let resuming = cfg.resume.is_some();

    let halo_limit = sys.cell.max_cutoff();
    if pot.cutoff() > halo_limit {
        return Err(AppError::Deck(format!(
            "potential cutoff {} exceeds the minimum-image limit {halo_limit:.3} of this box",
            pot.cutoff()
        )));
    }

    let skin = ((halo_limit - pot.cutoff()) * 0.9).clamp(0.0, 2.0);
    let opts = MdOptions {
        dt: cfg.dt_fs * 1e-3,
        skin,
        thermostat: match cfg.thermostat.as_deref() {
            None => None,
            Some("berendsen") => Some(Berendsen {
                target_t: cfg.temperature,
                tau: 0.1,
            }),
            Some(other) => return Err(AppError::Deck(format!("unknown thermostat '{other}'"))),
        },
        thermo_every: cfg.thermo_every,
        ..MdOptions::default()
    };

    // A resume APPENDS to an existing trajectory instead of truncating it,
    // and a step-number guard skips any frame the interrupted run already
    // wrote (the newest checkpoint can be older than the newest frame).
    let mut last_frame_step: Option<usize> = None;
    let mut traj = match &cfg.trajectory {
        Some(path) => {
            let file = if resuming {
                last_frame_step = last_trajectory_step(path);
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
            } else {
                std::fs::File::create(path)
            };
            Some(file.map_err(|e| AppError::Io(format!("cannot open {path}: {e}")))?)
        }
        None => None,
    };
    let names = type_names(&cfg.system);

    // Checkpoints write to `checkpoint_path`, or continue the rotation
    // being resumed from when only `resume` is given.
    let ckpt_base = cfg.checkpoint_path.clone().or_else(|| cfg.resume.clone());
    let rotation = match (&ckpt_base, cfg.checkpoint_every) {
        (_, 0) => None,
        (None, _) => {
            return Err(AppError::Deck(
                "checkpoint_every is set but there is no checkpoint_path to write to".into(),
            ))
        }
        (Some(base), _) => Some(Rotation::new(base, cfg.checkpoint_keep)),
    };

    log(&format!(
        "dpmd: {} atoms, potential {}, dt {} fs, steps {}..{}",
        sys.len(),
        pot.name(),
        cfg.dt_fs,
        progress.step,
        cfg.steps
    ));

    // Observability: enable spans/metrics only when the deck asks for them,
    // so plain runs keep the near-free disabled path.
    let obs_on = cfg.trace_path.is_some() || cfg.metrics_path.is_some();
    if obs_on {
        if let Some(path) = &cfg.metrics_path {
            dp_obs::metrics::install(path)
                .map_err(|e| AppError::Io(format!("cannot open metrics file {path}: {e}")))?;
        }
        if cfg.trace_path.is_some() {
            dp_obs::trace::start_recording(dp_obs::trace::DEFAULT_CAPACITY);
        }
        dp_obs::enable();
    }

    // The simulation proper, serial or supervised-parallel.
    let result: Result<RunSummary, AppError> = if let Some(grid) = cfg.grid {
        run_parallel_deck(
            cfg,
            &sys,
            pot,
            &opts,
            grid,
            progress,
            rotation,
            traj.as_mut(),
            &mut last_frame_step,
            &names,
            &mut log,
        )
    } else {
        run_serial_deck(
            cfg,
            &mut sys,
            pot,
            &opts,
            progress,
            rotation,
            traj.as_mut(),
            &mut last_frame_step,
            &names,
            &mut log,
        )
    };

    // Prometheus snapshot: counters are always on, so the dump is useful
    // for plain (un-instrumented) runs too. It runs after a failed run as
    // well — a fault drill's counters are the interesting part — but a
    // write error never masks the run's own error.
    let prom = write_prom_dump(cfg, &mut log);

    if obs_on {
        dp_obs::disable();
        // Teardown still runs after a failed run (a fault drill's metrics
        // are most interesting then), but a teardown error never masks the
        // run's own error.
        let teardown: Result<(), AppError> = (|| {
            if let Some(path) = &cfg.trace_path {
                let dropped = dp_obs::trace::dropped_events();
                let events = dp_obs::trace::stop_recording();
                dp_obs::trace::write_chrome_trace(path, &events)
                    .map_err(|e| AppError::Io(format!("cannot write trace {path}: {e}")))?;
                log(&format!(
                    "trace: {} events -> {path}{}",
                    events.len(),
                    if dropped > 0 {
                        format!(" ({dropped} oldest dropped)")
                    } else {
                        String::new()
                    }
                ));
            }
            if cfg.metrics_path.is_some() {
                if let Some(res) = dp_obs::metrics::uninstall() {
                    res.map_err(|e| AppError::Io(format!("metrics write failed: {e}")))?;
                }
            }
            Ok(())
        })();
        let summary = result?;
        teardown?;
        prom?;
        return Ok(summary);
    }
    let summary = result?;
    prom?;
    Ok(summary)
}

fn write_prom_dump(cfg: &AppConfig, log: &mut impl FnMut(&str)) -> Result<(), AppError> {
    let Some(path) = &cfg.prom_dump else {
        return Ok(());
    };
    std::fs::write(path, dp_obs::prom::render())
        .map_err(|e| AppError::Io(format!("cannot write prom dump {path}: {e}")))?;
    log(&format!("prom: text-format snapshot -> {path}"));
    Ok(())
}

fn write_frame_dedup(
    f: &mut std::fs::File,
    sys: &System,
    names: &[&str],
    step: usize,
    last: &mut Option<usize>,
) -> std::io::Result<()> {
    if last.is_some_and(|l| step <= l) {
        return Ok(());
    }
    dp_md::xyz::write_frame(f, sys, names, &format!("step={step}"))?;
    f.flush().ok();
    *last = Some(step);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_serial_deck(
    cfg: &AppConfig,
    sys: &mut System,
    pot: Box<dyn Potential>,
    opts: &MdOptions,
    progress: MdProgress,
    rotation: Option<Rotation>,
    mut traj: Option<&mut std::fs::File>,
    last_frame_step: &mut Option<usize>,
    names: &[&'static str],
    log: &mut impl FnMut(&str),
) -> Result<RunSummary, AppError> {
    let mut io_error: Option<String> = None;
    let mut save = |sys: &System, p: MdProgress| {
        if let Some(rot) = &rotation {
            let snap = MdCheckpoint::capture(sys, p);
            if let Err(e) = snap.save(rot) {
                eprintln!(
                    "warning: checkpoint write at step {} failed ({e}); run continues",
                    p.step
                );
            }
        }
        if let Some(f) = traj.as_deref_mut() {
            if let Err(e) = write_frame_dedup(f, sys, names, p.step, last_frame_step) {
                io_error.get_or_insert(format!("trajectory write failed: {e}"));
            }
        }
    };
    let sink = (cfg.checkpoint_every > 0).then_some(CheckpointSink {
        every: cfg.checkpoint_every,
        save: &mut save,
    });

    let run_result = run_md_resumable(sys, pot.as_ref(), opts, cfg.steps, progress, |_| {}, sink);
    drop(save);

    if let Some(e) = io_error {
        return Err(AppError::Io(e));
    }
    for s in &run_result.thermo {
        log(&format!(
            "step {:6}  PE {:+.4} eV  KE {:.4} eV  T {:6.1} K  P {:+.0} bar",
            s.step, s.potential_energy, s.kinetic_energy, s.temperature, s.pressure
        ));
    }
    if let Some(f) = traj.as_deref_mut() {
        write_frame_dedup(f, sys, names, cfg.steps, last_frame_step)
            .map_err(|e| AppError::Io(format!("trajectory write failed: {e}")))?;
    }
    log(&format!(
        "done: {} evaluations, {} neighbor rebuilds, loop {:?} ({:.2e} s/step/atom)",
        run_result.evaluations,
        run_result.neighbor_rebuilds,
        run_result.loop_time,
        run_result.time_to_solution(sys.len())
    ));

    Ok(RunSummary {
        thermo: run_result.thermo,
        final_system: sys.clone(),
        potential_name: pot.name(),
        recoveries: 0,
        local_recoveries: 0,
        recovery_tier: "none",
        imbalance: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_parallel_deck(
    cfg: &AppConfig,
    sys: &System,
    pot: Box<dyn Potential>,
    opts: &MdOptions,
    grid: [usize; 3],
    progress: MdProgress,
    rotation: Option<Rotation>,
    mut traj: Option<&mut std::fs::File>,
    last_frame_step: &mut Option<usize>,
    names: &[&'static str],
    log: &mut impl FnMut(&str),
) -> Result<RunSummary, AppError> {
    let faults = build_fault_plan(cfg, grid)?;
    // A chaos schedule may carry more faults than the deck's default retry
    // budget; grow the budget to cover the whole schedule so "chaos with N
    // faults" never fails just because N > fault_max_retries.
    let max_recoveries = faults
        .as_ref()
        .map_or(cfg.fault_max_retries, |p| {
            cfg.fault_max_retries.max(p.max_failures())
        });
    // Localized respawns get the same treatment: the default budget, grown
    // to cover every scheduled kill so a soak never fails on budget alone.
    let defaults = ParallelOptions::default();
    let max_local_recoveries = faults.as_ref().map_or(defaults.max_local_recoveries, |p| {
        defaults.max_local_recoveries.max(p.max_failures())
    });
    // chaos_soak supplies the audit stride unless the deck sets one itself.
    let audit_every = if cfg.audit_every > 0 {
        cfg.audit_every
    } else {
        cfg.chaos_soak.as_ref().map_or(0, |s| s.audit_every)
    };
    let popts = ParallelOptions {
        md: *opts,
        blocking_reduce: cfg.blocking_reduce,
        start_step: progress.step,
        start_rng_draws: progress.rng_draws,
        checkpoint: rotation.map(|rotation| ParallelCkpt {
            every: cfg.checkpoint_every,
            rotation,
            shards: cfg.checkpoint_shards,
        }),
        faults,
        max_recoveries,
        max_local_recoveries,
        audit_every,
        comm_deadline: cfg
            .fault_comm_deadline_ms
            .map_or(dp_parallel::DEFAULT_DEADLINE, Duration::from_millis),
        report_every: cfg.report_every,
    };
    let name = pot.name();
    let pot: Arc<dyn Potential> = Arc::from(pot);
    let n_steps = cfg.steps - progress.step;
    let run = run_parallel_md(sys, pot, grid, &popts, n_steps).map_err(|e| match e {
        RunError::Config(msg) => AppError::Deck(msg),
        other => AppError::Fault(other),
    })?;

    for s in &run.thermo {
        log(&format!(
            "step {:6}  PE {:+.4} eV  KE {:.4} eV  T {:6.1} K  P {:+.0} bar",
            s.step, s.potential_energy, s.kinetic_energy, s.temperature, s.pressure
        ));
    }
    if run.local_recoveries > 0 {
        log(&format!(
            "recovered {} dead rank(s) in place via localized respawn (no global reload)",
            run.local_recoveries
        ));
    }
    if run.recoveries > 0 {
        let from: Vec<String> = run
            .recovered_from
            .iter()
            .map(|p| p.display().to_string())
            .collect();
        log(&format!(
            "recovered from {} failed epoch(s) via checkpoint reload ({})",
            run.recoveries,
            from.join(", ")
        ));
    }
    if let Some(f) = traj.as_deref_mut() {
        write_frame_dedup(f, &run.system, names, cfg.steps, last_frame_step)
            .map_err(|e| AppError::Io(format!("trajectory write failed: {e}")))?;
    }
    log(&format!(
        "done: {} ranks, {} reductions, loop {:?} ({:.2e} s/step/atom)",
        run.rank_stats.len(),
        run.reduce_operations,
        run.loop_time,
        run.time_to_solution(run.system.len())
    ));

    // §7.3 analyzer output: attach the perfmodel's modeled-GFLOPS column
    // (the rate the paper's per-atom work estimate would demand of the
    // same compute window), emit the summary into the metrics stream,
    // and print the breakdown table when the deck asks for it.
    let mut imbalance = run.imbalance.clone();
    let model = match &cfg.system {
        SystemSpec::Water { .. } => SystemModel::by_name("water"),
        SystemSpec::Fcc { .. } => SystemModel::by_name("copper"),
    };
    let window_steps = imbalance.steps as f64;
    if let (Some(m), Some(p)) = (model.as_ref(), imbalance.phase_mut("compute")) {
        if p.mean_s > 0.0 {
            p.modeled_gflops = Some(m.step_flops(run.system.len()) * window_steps / p.mean_s / 1e9);
        }
    }
    if dp_obs::metrics::active() {
        dp_obs::metrics::emit_line(&imbalance.to_json("imbalance", None));
    }
    if cfg.imbalance_report {
        for line in imbalance.to_table().lines() {
            log(line);
        }
    }

    // Roofline attribution: place each phase's achieved rate against the
    // paper's V100 roofline (§6.3 / Fig. 3). Compute gets the FLOP counter
    // and the perfmodel's per-atom traffic estimate; comm gets the ghost
    // stream (3 f64 coordinates per forwarded atom); wait moves nothing.
    let device = Roofline::v100();
    let ghost_bytes: u64 = run
        .rank_stats
        .iter()
        .map(|s| s.ghost_atoms_sent * 24)
        .sum();
    let mut rows = Vec::new();
    for p in &imbalance.phases {
        let (flops, bytes) = match p.name {
            "compute" => (
                run.flops,
                model.as_ref().map_or(0, |m| {
                    (m.bytes_per_atom() * run.system.len() as f64 * window_steps) as u64
                }),
            ),
            "comm" => (0, ghost_bytes),
            _ => (0, 0),
        };
        let mut row = RooflineRow::from_attribution(p.name, p.mean_s, flops, bytes);
        row.modeled_gflops = p.modeled_gflops;
        if let Some(ai) = row.arithmetic_intensity {
            row.attainable_gflops = Some(device.attainable_gflops(ai));
            row.bound = device.bound(ai);
        }
        rows.push(row);
    }
    let roofline = RooflineReport { rows };
    if dp_obs::metrics::active() {
        for r in &roofline.rows {
            dp_obs::metrics::emit_line(&r.to_json());
        }
    }
    for r in &roofline.rows {
        dp_obs::prom::publish_gauge(
            "roofline.achieved_gflops",
            &[("phase", r.phase)],
            r.achieved_gflops,
        );
        if let Some(att) = r.attainable_gflops {
            dp_obs::prom::publish_gauge("roofline.attainable_gflops", &[("phase", r.phase)], att);
        }
    }
    if cfg.profile_report {
        for line in roofline.to_table().lines() {
            log(line);
        }
    }

    let recovery_tier = if run.recoveries > 0 {
        "global"
    } else if run.local_recoveries > 0 {
        "local"
    } else {
        "none"
    };
    if dp_obs::metrics::active() {
        dp_obs::metrics::emit_line(&format!(
            "{{\"event\":\"recovery_summary\",\"tier\":\"{recovery_tier}\",\"local\":{},\"global\":{}}}",
            run.local_recoveries, run.recoveries
        ));
    }
    Ok(RunSummary {
        thermo: run.thermo,
        final_system: run.system,
        potential_name: name,
        recoveries: run.recoveries,
        local_recoveries: run.local_recoveries,
        recovery_tier,
        imbalance: Some(imbalance),
    })
}

/// Parse a JSON input deck. Unknown keys, missing keys, and type
/// mismatches all surface with serde's path context.
pub fn parse_config(text: &str) -> Result<AppConfig, AppError> {
    serde_json::from_str(text).map_err(|e| AppError::Deck(format!("bad input deck: {e}")))
}
