//! `dpmd ensemble` — drive the multi-replica engine from a JSON deck.
//!
//! ```json
//! {
//!   "replicas": 8,
//!   "system": {"kind": "fcc", "a0": 5.26, "reps": [2,2,2], "mass": 63.546},
//!   "model": {"kind": "synthetic", "seed": 7, "rcut": 4.0},
//!   "t_min": 100.0,
//!   "t_max": 400.0,
//!   "steps": 20,
//!   "dt_fs": 2.0,
//!   "exchange_every": 10,
//!   "swap_log": "swaps.jsonl",
//!   "seed": 1
//! }
//! ```
//!
//! The deck builds a geometric temperature ladder `T_k = t_min ·
//! (t_max/t_min)^(k/(n−1))`, clones the base system into one replica per
//! rung (each with its own deterministic `CounterRng` stream for jitter
//! and velocities), and advances all of them against one shared
//! [`DeepPotential`] through the cross-replica batched evaluation of
//! [`dp_replica::EnsembleEngine`]. Replica exchange, whole-ensemble
//! checkpoint/resume, and the swap-log JSONL are driven by the deck keys
//! below; an optional `"active_learning"` section runs the DP-GEN-style
//! loop of [`dp_replica::run_active_learning`] instead of a plain run.
//!
//! The same decks run server-side: `POST /v1/jobs` detects a top-level
//! `"replicas"` key and routes the job here (see `crate::serve_app`).

use crate::app::{self, AppError, PotentialSpec, SystemSpec};
use deepmd_core::config::DpConfig;
use deepmd_core::model::{DpModel, DpModelData};
use deepmd_core::{DeepPotential, PrecisionMode};
use dp_md::{CounterRng, System};
use dp_replica::{
    replica_seed, run_active_learning, ActiveLearnOptions, EnsembleEngine, EnsembleOptions,
};
use dp_train::dataset::perturbed_frames;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Deserialize;
use std::io::Write as _;
use std::sync::Arc;

/// Which Deep Potential model the whole ensemble shares.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ModelSpec {
    /// A deterministic untrained model (weights from `seed`); the
    /// arithmetic is the real thing, so smoke tests and benchmarks work
    /// without a training run.
    Synthetic {
        seed: u64,
        #[serde(default = "default_rcut")]
        rcut: f64,
    },
    /// A trained model file (JSON `DpModelData`).
    File { path: String },
}

fn default_rcut() -> f64 {
    4.5
}

/// The optional `"active_learning"` deck section: run the concurrent
/// learning loop (explore → screen by ensemble deviation → label with the
/// reference → retrain → hot-swap) instead of a plain ensemble run.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ActiveLearnConfig {
    /// Labeling potential standing in for the paper's DFT.
    pub reference: PotentialSpec,
    pub rounds: usize,
    #[serde(default = "default_n_models")]
    pub n_models: usize,
    #[serde(default = "default_train_steps")]
    pub train_steps: usize,
    #[serde(default = "default_steps_per_round")]
    pub steps_per_round: usize,
    #[serde(default = "default_sample_every")]
    pub sample_every: usize,
    #[serde(default = "default_lo")]
    pub lo: f64,
    #[serde(default = "default_hi")]
    pub hi: f64,
    #[serde(default = "default_lr")]
    pub lr: f64,
    /// Seed frames labeled with the reference before round 1.
    #[serde(default = "default_initial_frames")]
    pub initial_frames: usize,
    /// Position jitter (Å) of the seed frames.
    #[serde(default = "default_frame_perturb")]
    pub frame_perturb: f64,
}

fn default_n_models() -> usize {
    2
}
fn default_train_steps() -> usize {
    60
}
fn default_steps_per_round() -> usize {
    20
}
fn default_sample_every() -> usize {
    10
}
fn default_lo() -> f64 {
    0.05
}
fn default_hi() -> f64 {
    5.0
}
fn default_lr() -> f64 {
    0.02
}
fn default_initial_frames() -> usize {
    4
}
fn default_frame_perturb() -> f64 {
    0.15
}

/// The whole ensemble deck. Unknown keys are rejected, like `AppConfig`.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct EnsembleConfig {
    /// Ladder size (one replica per rung).
    pub replicas: usize,
    /// Base system every replica is cloned from.
    pub system: SystemSpec,
    pub model: ModelSpec,
    /// Ladder endpoints (K); the rungs are geometric between them.
    pub t_min: f64,
    pub t_max: f64,
    pub steps: usize,
    pub dt_fs: f64,
    /// `"langevin"` (default) or `"berendsen"` — the engine needs a
    /// thermostat to hold each rung at its ladder temperature.
    #[serde(default)]
    pub thermostat: Option<String>,
    /// Langevin friction (1/ps).
    #[serde(default = "default_gamma")]
    pub gamma: f64,
    /// Berendsen coupling time (ps).
    #[serde(default = "default_tau")]
    pub tau: f64,
    #[serde(default = "default_thermo_every")]
    pub thermo_every: usize,
    /// Steps between exchange rounds (0 = no replica exchange).
    #[serde(default)]
    pub exchange_every: usize,
    /// OS threads for the batched evaluation (0 = one per core,
    /// 1 = in-thread). Results are bit-identical either way.
    #[serde(default)]
    pub eval_threads: usize,
    /// Per-replica initial position jitter (Å), so rungs decorrelate.
    #[serde(default)]
    pub perturb: f64,
    #[serde(default)]
    pub mixed_precision: bool,
    #[serde(default)]
    pub seed: u64,
    /// Write one JSON line per attempted exchange here.
    #[serde(default)]
    pub swap_log: Option<String>,
    /// Write JSONL metrics for the run here: per-rank histogram rows,
    /// active-learning `train_step` lines (loss, grad norm, wall), and
    /// the closing `ensemble_summary`. Enables span/histogram collection
    /// for the run's duration.
    #[serde(default)]
    pub metrics_path: Option<String>,
    /// Steps between whole-ensemble checkpoints (0 = none).
    #[serde(default)]
    pub checkpoint_every: usize,
    #[serde(default)]
    pub checkpoint_path: Option<String>,
    #[serde(default = "default_checkpoint_keep")]
    pub checkpoint_keep: usize,
    /// Resume from `checkpoint_path` instead of building fresh replicas.
    /// Also settable as `dpmd ensemble <deck> --resume`.
    #[serde(default)]
    pub resume: bool,
    #[serde(default)]
    pub active_learning: Option<ActiveLearnConfig>,
}

fn default_gamma() -> f64 {
    2.0
}
fn default_tau() -> f64 {
    0.1
}
fn default_thermo_every() -> usize {
    20
}
fn default_checkpoint_keep() -> usize {
    3
}

/// What an ensemble run produced (the serve job summary renders this).
#[derive(Debug)]
pub struct EnsembleSummary {
    pub replicas: usize,
    /// Engine step reached (every replica is at this step).
    pub steps: usize,
    pub exchange_attempts: u64,
    pub exchange_accepted: u64,
    /// Final ladder temperature of each replica (exchange permutes them).
    pub final_temps: Vec<f64>,
    /// Active learning only: frames in the grown dataset.
    pub dataset_size: Option<usize>,
}

/// Parse an ensemble deck (same serde error surfacing as `app`).
pub fn parse_config(text: &str) -> Result<EnsembleConfig, AppError> {
    serde_json::from_str(text).map_err(|e| AppError::Deck(format!("bad ensemble deck: {e}")))
}

/// Is this deck for the ensemble runner rather than a plain MD run? The
/// discriminator is the top-level `"replicas"` key, which `AppConfig`
/// rejects and `EnsembleConfig` requires.
pub fn is_ensemble_deck(text: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(text)
        .ok()
        .is_some_and(|v| v.get("replicas").is_some())
}

/// The geometric ladder `T_k = t_min · (t_max/t_min)^(k/(n−1))` — equal
/// acceptance-probability spacing for a system with
/// temperature-independent heat capacity.
pub fn temperature_ladder(t_min: f64, t_max: f64, n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![t_min];
    }
    let ratio = t_max / t_min;
    (0..n)
        .map(|k| t_min * ratio.powf(k as f64 / (n - 1) as f64))
        .collect()
}

fn build_model(spec: &ModelSpec) -> Result<DpModel<f64>, AppError> {
    match spec {
        ModelSpec::Synthetic { seed, rcut } => {
            if !(rcut.is_finite() && *rcut > 0.0) {
                return Err(AppError::Deck(format!("bad synthetic model rcut {rcut}")));
            }
            let cfg = DpConfig::small(1, *rcut, 16);
            Ok(DpModel::new_random(cfg, &mut StdRng::seed_from_u64(*seed)))
        }
        ModelSpec::File { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| AppError::Io(format!("cannot read model {path}: {e}")))?;
            let data: DpModelData = serde_json::from_str(&text)
                .map_err(|e| AppError::Deck(format!("bad model {path}: {e}")))?;
            Ok(DpModel::from_data(&data))
        }
    }
}

fn engine_options(cfg: &EnsembleConfig, skin: f64, mode: PrecisionMode) -> Result<EnsembleOptions, AppError> {
    let mut opts = EnsembleOptions {
        dt: cfg.dt_fs * 1e-3,
        skin,
        thermo_every: cfg.thermo_every,
        mode,
        exchange_every: cfg.exchange_every,
        seed: cfg.seed,
        eval_threads: cfg.eval_threads,
        ..EnsembleOptions::default()
    };
    match cfg.thermostat.as_deref() {
        None | Some("langevin") => opts.langevin_gamma = Some(cfg.gamma),
        Some("berendsen") => opts.berendsen_tau = Some(cfg.tau),
        Some(other) => {
            return Err(AppError::Deck(format!(
                "unknown thermostat '{other}' (ensemble runs take \"langevin\" or \"berendsen\")"
            )))
        }
    }
    Ok(opts)
}

/// Run the deck; `log` receives progress lines. The run is deterministic
/// in the deck: same deck, same swap log, byte-for-byte.
pub fn run(cfg: &EnsembleConfig, mut log: impl FnMut(&str)) -> Result<EnsembleSummary, AppError> {
    if cfg.replicas == 0 {
        return Err(AppError::Deck("\"replicas\" must be at least 1".into()));
    }
    if !(cfg.t_min.is_finite() && cfg.t_min > 0.0 && cfg.t_max.is_finite() && cfg.t_max >= cfg.t_min)
    {
        return Err(AppError::Deck(format!(
            "bad ladder: need 0 < t_min <= t_max, got t_min {} t_max {}",
            cfg.t_min, cfg.t_max
        )));
    }
    if !(cfg.dt_fs.is_finite() && cfg.dt_fs > 0.0) {
        return Err(AppError::Deck(format!("bad dt_fs {}", cfg.dt_fs)));
    }
    if cfg.checkpoint_every > 0 && cfg.checkpoint_path.is_none() {
        return Err(AppError::Deck(
            "checkpoint_every is set but there is no checkpoint_path to write to".into(),
        ));
    }
    if cfg.resume && cfg.checkpoint_path.is_none() {
        return Err(AppError::Deck(
            "resume needs a checkpoint_path to resume from".into(),
        ));
    }
    if cfg.active_learning.is_some() && cfg.checkpoint_every > 0 {
        return Err(AppError::Deck(
            "active_learning and checkpoint_every are mutually exclusive (the loop owns the \
             step schedule)"
                .into(),
        ));
    }

    // Same obs lifecycle as `app::run`: a metrics sink for the run's
    // duration, torn down afterwards (teardown errors never mask the
    // run's own error).
    let obs_on = cfg.metrics_path.is_some();
    if obs_on {
        if let Some(path) = &cfg.metrics_path {
            dp_obs::metrics::install(path)
                .map_err(|e| AppError::Io(format!("cannot open metrics file {path}: {e}")))?;
        }
        dp_obs::enable();
    }
    let result = run_engine(cfg, &mut log);
    if obs_on {
        dp_obs::disable();
        let teardown = dp_obs::metrics::uninstall().map_or(Ok(()), |r| {
            r.map_err(|e| AppError::Io(format!("metrics write failed: {e}")))
        });
        let summary = result?;
        teardown?;
        return Ok(summary);
    }
    result
}

fn run_engine(
    cfg: &EnsembleConfig,
    log: &mut impl FnMut(&str),
) -> Result<EnsembleSummary, AppError> {
    let model = build_model(&cfg.model)?;
    let model_cfg = model.config.clone();
    let mode = if cfg.mixed_precision {
        PrecisionMode::Mixed
    } else {
        PrecisionMode::Double
    };
    let pot = Arc::new(DeepPotential::new(model, mode));

    let base = app::build_system(&cfg.system);
    let halo_limit = base.cell.max_cutoff();
    if model_cfg.rcut > halo_limit {
        return Err(AppError::Deck(format!(
            "model cutoff {} exceeds the minimum-image limit {halo_limit:.3} of this box",
            model_cfg.rcut
        )));
    }
    let skin = ((halo_limit - model_cfg.rcut) * 0.9).clamp(0.0, 2.0);
    let opts = engine_options(cfg, skin, mode)?;
    let temps = temperature_ladder(cfg.t_min, cfg.t_max, cfg.replicas);

    let mut engine = if cfg.resume {
        let path = cfg.checkpoint_path.as_deref().expect("checked above");
        let engine =
            EnsembleEngine::resume(Arc::clone(&pot), opts, path.as_ref(), cfg.checkpoint_keep)
                .map_err(|e| AppError::Ckpt(format!("cannot resume from {path}: {e}")))?;
        if engine.n_replicas() != cfg.replicas {
            return Err(AppError::Ckpt(format!(
                "checkpoint holds {} replicas, deck wants {}",
                engine.n_replicas(),
                cfg.replicas
            )));
        }
        if engine.step > cfg.steps {
            return Err(AppError::Ckpt(format!(
                "checkpoint is at step {}, but the deck only runs to step {}",
                engine.step, cfg.steps
            )));
        }
        log(&format!(
            "resuming from {path} (step {}, {} replicas)",
            engine.step,
            engine.n_replicas()
        ));
        engine
    } else {
        let systems: Vec<System> = (0..cfg.replicas)
            .map(|k| {
                let mut sys = base.clone();
                let mut rng = CounterRng::new(replica_seed(cfg.seed, k));
                if cfg.perturb > 0.0 {
                    sys.perturb(cfg.perturb, &mut rng);
                }
                sys.init_velocities(temps[k], &mut rng);
                sys
            })
            .collect();
        EnsembleEngine::new(Arc::clone(&pot), systems, &temps, opts)
    };

    log(&format!(
        "ensemble: {} replicas x {} atoms, ladder {:.1}..{:.1} K, steps {}..{}, exchange every {}",
        engine.n_replicas(),
        base.len(),
        cfg.t_min,
        cfg.t_max,
        engine.step,
        cfg.steps,
        cfg.exchange_every
    ));

    // --- advance: active-learning loop, or plain run with checkpoints ---
    let mut dataset_size = None;
    if let Some(al) = &cfg.active_learning {
        if al.n_models < 2 {
            return Err(AppError::Deck("active_learning.n_models must be >= 2".into()));
        }
        if al.sample_every == 0 {
            return Err(AppError::Deck("active_learning.sample_every must be positive".into()));
        }
        let reference = app::build_potential(&al.reference)?;
        let mut frame_rng = StdRng::seed_from_u64(cfg.seed ^ 0xF4A3);
        let frames = perturbed_frames(
            &base,
            reference.as_ref(),
            al.initial_frames,
            al.frame_perturb,
            &mut frame_rng,
        );
        let al_opts = ActiveLearnOptions {
            n_models: al.n_models,
            train_steps: al.train_steps,
            steps_per_round: al.steps_per_round,
            sample_every: al.sample_every,
            lo: al.lo,
            hi: al.hi,
            lr: al.lr,
            seed: cfg.seed,
        };
        let (dataset, reports) = run_active_learning(
            &mut engine,
            &model_cfg,
            reference.as_ref(),
            frames,
            al.rounds,
            &al_opts,
        );
        for r in &reports {
            log(&format!(
                "round {:3}  dataset {:5}  harvested {:4}  labeled {:4}  failed {:4}  max dev {:.3e}",
                r.round, r.dataset_size, r.harvested, r.candidates_added, r.failed,
                r.max_deviation_seen
            ));
        }
        dataset_size = Some(dataset.len());
    } else {
        while engine.step < cfg.steps {
            let remaining = cfg.steps - engine.step;
            let chunk = if cfg.checkpoint_every > 0 {
                remaining.min(cfg.checkpoint_every)
            } else {
                remaining
            };
            engine.run(chunk);
            if cfg.checkpoint_every > 0 {
                let path = cfg.checkpoint_path.as_deref().expect("checked above");
                engine
                    .save_checkpoint(path.as_ref(), cfg.checkpoint_keep)
                    .map_err(|e| AppError::Io(format!("checkpoint write failed: {e}")))?;
            }
        }
    }

    // --- report ---
    for (k, r) in engine.replicas.iter().enumerate() {
        if let Some(t) = r.thermo.last() {
            log(&format!(
                "replica {k:3}  step {:6}  target {:6.1} K  PE {:+.4} eV  T {:6.1} K",
                t.step, r.target_t, t.potential_energy, t.temperature
            ));
        }
    }
    if cfg.exchange_every > 0 {
        log(&format!(
            "exchange: {} accepted / {} attempted",
            engine.exchange_accepted, engine.exchange_attempts
        ));
    }
    if let Some(path) = &cfg.swap_log {
        let mut f = std::fs::File::create(path)
            .map_err(|e| AppError::Io(format!("cannot open swap log {path}: {e}")))?;
        for ev in &engine.swap_log {
            writeln!(f, "{}", ev.to_json())
                .map_err(|e| AppError::Io(format!("swap log write failed: {e}")))?;
        }
        log(&format!("swap log: {} events -> {path}", engine.swap_log.len()));
    }

    if dp_obs::metrics::active() {
        dp_obs::metrics::emit_line(&format!(
            "{{\"event\":\"ensemble_summary\",\"replicas\":{},\"steps\":{},\
             \"exchange_attempts\":{},\"exchange_accepted\":{}}}",
            engine.n_replicas(),
            engine.step,
            engine.exchange_attempts,
            engine.exchange_accepted
        ));
    }

    Ok(EnsembleSummary {
        replicas: engine.n_replicas(),
        steps: engine.step,
        exchange_attempts: engine.exchange_attempts,
        exchange_accepted: engine.exchange_accepted,
        final_temps: engine.replicas.iter().map(|r| r.target_t).collect(),
        dataset_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Deck JSON parsing needs real serde_json and is exercised by the
    // tier-1 ensemble smoke; these tests drive the library surface the
    // deck maps onto.

    fn config() -> EnsembleConfig {
        EnsembleConfig {
            replicas: 3,
            system: SystemSpec::Fcc {
                a0: 5.3,
                reps: [2, 2, 2],
                mass: 63.546,
            },
            model: ModelSpec::Synthetic { seed: 7, rcut: 4.5 },
            t_min: 100.0,
            t_max: 300.0,
            steps: 6,
            dt_fs: 2.0,
            thermostat: None,
            gamma: 2.0,
            tau: 0.1,
            thermo_every: 3,
            exchange_every: 3,
            eval_threads: 0,
            perturb: 0.05,
            mixed_precision: false,
            seed: 9,
            swap_log: None,
            metrics_path: None,
            checkpoint_every: 0,
            checkpoint_path: None,
            checkpoint_keep: 3,
            resume: false,
            active_learning: None,
        }
    }

    #[test]
    fn ladder_is_geometric_and_hits_both_endpoints() {
        let t = temperature_ladder(100.0, 400.0, 3);
        assert_eq!(t.len(), 3);
        assert!((t[0] - 100.0).abs() < 1e-12);
        assert!((t[1] - 200.0).abs() < 1e-9);
        assert!((t[2] - 400.0).abs() < 1e-12);
        assert_eq!(temperature_ladder(150.0, 600.0, 1), vec![150.0]);
    }

    #[test]
    fn run_is_deterministic_in_the_deck() {
        let summarize = || {
            let mut lines = Vec::new();
            let s = run(&config(), |l| lines.push(l.to_string())).unwrap();
            (s, lines)
        };
        let (a, la) = summarize();
        let (b, lb) = summarize();
        assert_eq!(a.replicas, 3);
        assert_eq!(a.steps, 6);
        assert_eq!(a.exchange_attempts, b.exchange_attempts);
        assert_eq!(a.exchange_accepted, b.exchange_accepted);
        for (x, y) in a.final_temps.iter().zip(&b.final_temps) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(la, lb, "progress lines must be reproducible");
        // exchange ran: 2 rounds x 1 pair each (alternating phase, 3 rungs)
        assert_eq!(a.exchange_attempts, 2);
    }

    #[test]
    fn checkpointed_run_resumes_to_the_same_final_state() {
        let dir = std::env::temp_dir().join(format!("dp-ensemble-app-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("ens.ckpt").to_string_lossy().into_owned();

        let mut straight = config();
        straight.steps = 8;
        let s = run(&straight, |_| {}).unwrap();

        let mut first = config();
        first.steps = 4;
        first.checkpoint_every = 4;
        first.checkpoint_path = Some(base.clone());
        run(&first, |_| {}).unwrap();

        let mut second = config();
        second.steps = 8;
        second.checkpoint_every = 4;
        second.checkpoint_path = Some(base.clone());
        second.resume = true;
        let r = run(&second, |_| {}).unwrap();

        assert_eq!(r.steps, 8);
        for (x, y) in s.final_temps.iter().zip(&r.final_temps) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(s.exchange_attempts, r.exchange_attempts);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_decks_are_typed_errors() {
        let mut zero = config();
        zero.replicas = 0;
        assert!(matches!(run(&zero, |_| {}), Err(AppError::Deck(_))));

        let mut ladder = config();
        ladder.t_min = 300.0;
        ladder.t_max = 100.0;
        assert!(matches!(run(&ladder, |_| {}), Err(AppError::Deck(_))));

        let mut cutoff = config();
        cutoff.system = SystemSpec::Fcc {
            a0: 3.0,
            reps: [2, 2, 2],
            mass: 63.546,
        };
        assert!(matches!(run(&cutoff, |_| {}), Err(AppError::Deck(_))));

        let mut orphan = config();
        orphan.checkpoint_every = 5;
        assert!(matches!(run(&orphan, |_| {}), Err(AppError::Deck(_))));

        let mut thermostat = config();
        thermostat.thermostat = Some("nose-hoover".into());
        assert!(matches!(run(&thermostat, |_| {}), Err(AppError::Deck(_))));
    }

    #[test]
    fn active_learning_deck_grows_a_dataset() {
        let mut cfg = config();
        cfg.model = ModelSpec::Synthetic { seed: 7, rcut: 3.9 };
        cfg.active_learning = Some(ActiveLearnConfig {
            reference: PotentialSpec::LennardJones {
                eps: 0.2,
                sigma: 2.6,
                rcut: 3.9,
            },
            rounds: 1,
            n_models: 2,
            train_steps: 10,
            steps_per_round: 4,
            sample_every: 2,
            lo: 1e-5,
            hi: 1e3,
            lr: 0.02,
            initial_frames: 3,
            frame_perturb: 0.15,
        });
        let s = run(&cfg, |_| {}).unwrap();
        assert_eq!(s.steps, 4);
        let n = s.dataset_size.expect("active learning reports a dataset");
        assert!(n >= 3, "dataset shrank: {n}");
    }
}
