//! `dpmd` — run an MD simulation from a JSON input deck.
//!
//! Usage: `dpmd <input.json> [--resume <checkpoint>] [--trace <file>]
//! [--metrics <file>] [--imbalance-report]`; see `deepmd_repro::app` for
//! the deck format. `--resume` restarts from the newest valid generation
//! of the given checkpoint rotation (overriding any `resume` key in the
//! deck) and appends to the deck's trajectory instead of truncating it.
//! `--trace` writes a chrome://tracing JSON of the run's spans (parallel
//! runs get one lane per rank); `--metrics` writes per-step JSONL metrics
//! (s/step/atom, achieved GFLOPS, per-rank latency histograms). Both
//! override the corresponding `trace_path` / `metrics_path` deck keys.
//! `--imbalance-report` prints the cross-rank compute/comm/wait breakdown
//! table after a parallel run (deck key `imbalance_report`).
//!
//! Exit codes distinguish failure classes (see `app::AppError`):
//! 2 = bad deck/usage, 3 = I/O failure, 4 = unusable checkpoint,
//! 5 = parallel run failed after exhausting fault recovery, 1 = other.

fn usage() -> ! {
    eprintln!(
        "usage: dpmd <input.json> [--resume <checkpoint>] [--trace <file>] [--metrics <file>] [--imbalance-report]"
    );
    std::process::exit(2);
}

fn main() {
    let mut deck: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut imbalance_report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--imbalance-report" => imbalance_report = true,
            "--resume" => match args.next() {
                Some(path) => resume = Some(path),
                None => {
                    eprintln!("dpmd: --resume needs a checkpoint path");
                    usage();
                }
            },
            "--trace" => match args.next() {
                Some(path) => trace = Some(path),
                None => {
                    eprintln!("dpmd: --trace needs an output path");
                    usage();
                }
            },
            "--metrics" => match args.next() {
                Some(path) => metrics = Some(path),
                None => {
                    eprintln!("dpmd: --metrics needs an output path");
                    usage();
                }
            },
            "-h" | "--help" => usage(),
            _ if deck.is_none() => deck = Some(arg),
            other => {
                eprintln!("dpmd: unexpected argument '{other}'");
                usage();
            }
        }
    }
    let path = match deck {
        Some(p) => p,
        None => usage(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dpmd: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };
    let mut cfg = match deepmd_repro::app::parse_config(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dpmd: {e}");
            std::process::exit(2);
        }
    };
    if resume.is_some() {
        cfg.resume = resume;
    }
    if trace.is_some() {
        cfg.trace_path = trace;
    }
    if metrics.is_some() {
        cfg.metrics_path = metrics;
    }
    if imbalance_report {
        cfg.imbalance_report = true;
    }
    if let Err(e) = deepmd_repro::app::run(&cfg, |line| println!("{line}")) {
        eprintln!("dpmd: {e}");
        std::process::exit(e.exit_code());
    }
}
