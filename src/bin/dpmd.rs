//! `dpmd` — run an MD simulation from a JSON input deck, or serve Deep
//! Potential inference as a daemon.
//!
//! Usage:
//!
//! * `dpmd <input.json> [--resume <checkpoint>] [--trace <file>]
//!   [--metrics <file>] [--prom-dump <file>] [--imbalance-report]
//!   [--profile-report]` — run a deck; see `deepmd_repro::app` for the
//!   deck format. `--resume` restarts from the newest valid generation of
//!   the given checkpoint rotation (overriding any `resume` key in the
//!   deck) and appends to the deck's trajectory instead of truncating it.
//!   `--trace` writes a chrome://tracing JSON of the run's spans
//!   (parallel runs get one lane per rank); `--metrics` writes per-step
//!   JSONL metrics; `--prom-dump` writes a Prometheus text-format
//!   snapshot of every counter/histogram/gauge after the run. All three
//!   override the corresponding deck keys. `--imbalance-report` prints
//!   the cross-rank compute/comm/wait breakdown after a parallel run;
//!   `--profile-report` prints the roofline attribution table (achieved
//!   vs. modeled GFLOPS, arithmetic intensity, memory/compute verdict).
//! * `dpmd serve [--addr host:port | --unix path] [--addr-file path]
//!   [--model NAME=model.json | NAME=synthetic:SEED]... [--workers N]
//!   [--max-batch N] [--queue-depth N] [--batch-linger-ms MS]
//!   [--state-dir DIR]` — start the inference daemon; see
//!   `deepmd_repro::serve_app`. Runs until `POST /v1/admin/shutdown`
//!   drains it, then exits 0.
//! * `dpmd ensemble <deck.json> [--resume]` — advance a ladder of
//!   replicas against one shared model with cross-replica batched
//!   evaluation, replica exchange, and optional active learning; see
//!   `deepmd_repro::ensemble_app` for the deck format. `--resume`
//!   restarts from the deck's `checkpoint_path` rotation.
//! * `dpmd request METHOD URL [--data JSON | --body FILE]` — tiny HTTP
//!   client for the daemon (no curl needed): prints the response body to
//!   stdout and exits non-zero on HTTP errors. URL is
//!   `http://host:port/path` or `unix:/path/sock:/path`.
//! * `dpmd promcheck <file>` — validate a Prometheus text-format
//!   exposition (name/label grammar, TYPE lines, histogram bucket
//!   monotonicity) with the same strict parser the tests use; exits 0 on
//!   a clean parse, 2 with a diagnostic otherwise.
//!
//! Exit codes distinguish failure classes (see `app::AppError`):
//! 2 = bad deck/usage, 3 = I/O failure, 4 = unusable checkpoint,
//! 5 = parallel run failed after exhausting fault recovery, 1 = other.

use std::io::{Read, Write};

fn usage() -> ! {
    eprintln!(
        "usage: dpmd <input.json> [--resume <checkpoint>] [--trace <file>] [--metrics <file>] [--prom-dump <file>] [--imbalance-report] [--profile-report]\n       dpmd ensemble <deck.json> [--resume]\n       dpmd serve [--addr host:port | --unix path] [--model NAME=SOURCE]... [options]\n       dpmd request METHOD URL [--data JSON | --body FILE]\n       dpmd promcheck <file>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("request") => run_request(&args[1..]),
        Some("ensemble") => run_ensemble(&args[1..]),
        Some("promcheck") => run_promcheck(&args[1..]),
        _ => run_deck(&args),
    }
}

/// `dpmd promcheck` — strict validation of a Prometheus text-format file,
/// so scripts can assert a scrape round-trips without a real Prometheus.
fn run_promcheck(args: &[String]) -> ! {
    let [path] = args else { usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dpmd promcheck: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };
    match dp_obs::prom::parse(&text) {
        Ok(exp) => {
            println!(
                "{path}: ok ({} samples, {} typed families)",
                exp.samples.len(),
                exp.types.len()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("dpmd promcheck: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn run_ensemble(args: &[String]) -> ! {
    let mut deck: Option<String> = None;
    let mut resume = false;
    for arg in args {
        match arg.as_str() {
            "--resume" => resume = true,
            "-h" | "--help" => usage(),
            _ if deck.is_none() => deck = Some(arg.clone()),
            other => {
                eprintln!("dpmd ensemble: unexpected argument '{other}'");
                usage();
            }
        }
    }
    let path = match deck {
        Some(p) => p,
        None => usage(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dpmd ensemble: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };
    let mut cfg = match deepmd_repro::ensemble_app::parse_config(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dpmd ensemble: {e}");
            std::process::exit(2);
        }
    };
    if resume {
        cfg.resume = true;
    }
    match deepmd_repro::ensemble_app::run(&cfg, |line| println!("{line}")) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("dpmd ensemble: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn run_serve(args: &[String]) -> ! {
    let opts = match deepmd_repro::serve_app::parse_serve_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dpmd serve: {e}");
            std::process::exit(2);
        }
    };
    match deepmd_repro::serve_app::run_serve(&opts, |line| println!("{line}")) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("dpmd serve: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// `dpmd request` — a minimal one-shot HTTP client so scripts and tests
/// can talk to the daemon without assuming curl exists.
fn run_request(args: &[String]) -> ! {
    let mut method: Option<String> = None;
    let mut url: Option<String> = None;
    let mut body: Vec<u8> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => match it.next() {
                Some(d) => body = d.clone().into_bytes(),
                None => usage(),
            },
            "--body" => match it.next() {
                Some(path) => match std::fs::read(path) {
                    Ok(b) => body = b,
                    Err(e) => {
                        eprintln!("dpmd request: cannot read {path}: {e}");
                        std::process::exit(3);
                    }
                },
                None => usage(),
            },
            _ if method.is_none() => method = Some(arg.clone()),
            _ if url.is_none() => url = Some(arg.clone()),
            other => {
                eprintln!("dpmd request: unexpected argument '{other}'");
                usage();
            }
        }
    }
    let (Some(method), Some(url)) = (method, url) else {
        usage()
    };

    // `http://host:port/path` over TCP, or `unix:/sock/path:/http/path`.
    let (stream, path): (Box<dyn ReadWrite>, String) = if let Some(rest) =
        url.strip_prefix("http://")
    {
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].to_string()),
            None => (rest, "/".to_string()),
        };
        match std::net::TcpStream::connect(host) {
            Ok(s) => (Box::new(s), path),
            Err(e) => {
                eprintln!("dpmd request: cannot connect to {host}: {e}");
                std::process::exit(3);
            }
        }
    } else if let Some(rest) = url.strip_prefix("unix:") {
        let Some((sock, path)) = rest.split_once(':') else {
            eprintln!("dpmd request: unix URL must be unix:<socket>:<path>");
            std::process::exit(2);
        };
        match std::os::unix::net::UnixStream::connect(sock) {
            Ok(s) => (Box::new(s), path.to_string()),
            Err(e) => {
                eprintln!("dpmd request: cannot connect to {sock}: {e}");
                std::process::exit(3);
            }
        }
    } else {
        eprintln!("dpmd request: URL must start with http:// or unix:");
        std::process::exit(2);
    };

    match roundtrip(stream, &method, &path, &body) {
        Ok((status, response)) => {
            println!("{response}");
            std::process::exit(if (200..300).contains(&status) { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("dpmd request: {e}");
            std::process::exit(3);
        }
    }
}

trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

fn roundtrip(
    mut stream: Box<dyn ReadWrite>,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, String), String> {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: dpmd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| format!("send failed: {e}"))?;
    stream
        .write_all(body)
        .map_err(|e| format!("send failed: {e}"))?;
    stream.flush().ok();
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("receive failed: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, rest)) = text.split_once("\r\n\r\n") else {
        return Err(format!("malformed response: {text}"));
    };
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head}"))?;
    Ok((status, rest.to_string()))
}

fn run_deck(args: &[String]) -> ! {
    let mut deck: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut prom_dump: Option<String> = None;
    let mut imbalance_report = false;
    let mut profile_report = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--imbalance-report" => imbalance_report = true,
            "--profile-report" => profile_report = true,
            "--prom-dump" => match it.next() {
                Some(path) => prom_dump = Some(path.clone()),
                None => {
                    eprintln!("dpmd: --prom-dump needs an output path");
                    usage();
                }
            },
            "--resume" => match it.next() {
                Some(path) => resume = Some(path.clone()),
                None => {
                    eprintln!("dpmd: --resume needs a checkpoint path");
                    usage();
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace = Some(path.clone()),
                None => {
                    eprintln!("dpmd: --trace needs an output path");
                    usage();
                }
            },
            "--metrics" => match it.next() {
                Some(path) => metrics = Some(path.clone()),
                None => {
                    eprintln!("dpmd: --metrics needs an output path");
                    usage();
                }
            },
            "-h" | "--help" => usage(),
            _ if deck.is_none() => deck = Some(arg.clone()),
            other => {
                eprintln!("dpmd: unexpected argument '{other}'");
                usage();
            }
        }
    }
    let path = match deck {
        Some(p) => p,
        None => usage(),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dpmd: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };
    let mut cfg = match deepmd_repro::app::parse_config(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dpmd: {e}");
            std::process::exit(2);
        }
    };
    if resume.is_some() {
        cfg.resume = resume;
    }
    if trace.is_some() {
        cfg.trace_path = trace;
    }
    if metrics.is_some() {
        cfg.metrics_path = metrics;
    }
    if prom_dump.is_some() {
        cfg.prom_dump = prom_dump;
    }
    if imbalance_report {
        cfg.imbalance_report = true;
    }
    if profile_report {
        cfg.profile_report = true;
    }
    if let Err(e) = deepmd_repro::app::run(&cfg, |line| println!("{line}")) {
        eprintln!("dpmd: {e}");
        std::process::exit(e.exit_code());
    }
    std::process::exit(0);
}
