//! `dpmd` — run an MD simulation from a JSON input deck.
//!
//! Usage: `dpmd <input.json>`; see `deepmd_repro::app` for the deck format.

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: dpmd <input.json>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dpmd: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let cfg = match deepmd_repro::app::parse_config(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dpmd: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = deepmd_repro::app::run(&cfg, |line| println!("{line}")) {
        eprintln!("dpmd: {e}");
        std::process::exit(1);
    }
}
