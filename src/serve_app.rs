//! `dpmd serve` — the Deep Potential inference daemon.
//!
//! The machinery (HTTP, router, coalescing batcher, job pool, graceful
//! shutdown) lives in `dp-serve`; this module supplies the physics:
//!
//! * a **model registry** loaded once at startup — each entry owns a
//!   [`DeepPotential`] whose §5.2.2 evaluation workspaces stay warm for
//!   the daemon's lifetime,
//! * the **eval backend** — concurrent `POST /v1/eval` requests against
//!   one model are drained by that model's batcher into a single
//!   [`DeepPotential::compute_batch`] call, which concatenates their
//!   fixed-shape padded environment tables (§5.2.1) and evaluates once;
//!   per-request results are bit-identical to serial evaluation, so
//!   batching is invisible to clients. Each model owns its own batcher
//!   queue and worker, so a deep queue on one model never head-of-line
//!   blocks evaluations against another,
//! * the **deck runner** — `POST /v1/jobs` decks execute through the
//!   same [`crate::app::run`] as the CLI, with per-job state
//!   directories, default checkpoint rotations, and typed failure
//!   classes mirroring the CLI exit codes. Decks with a top-level
//!   `"replicas"` key route to [`crate::ensemble_app::run`] instead —
//!   multi-replica ensemble runs are a first-class job type,
//! * the **metrics endpoint** — always-on `dp-obs` counters and
//!   latency histograms (request latency, batch sizes, queue waits)
//!   snapshotted as JSON.

use crate::app::{self, AppError};
use crate::ensemble_app;
use deepmd_core::config::DpConfig;
use deepmd_core::model::{DpModel, DpModelData};
use deepmd_core::{BatchItem, DeepPotential, PrecisionMode};
use dp_md::{Cell, NeighborList, System};
use dp_serve::json::{self, Json};
use dp_serve::{
    route, BatchBackend, BatchOptions, Batcher, Bind, Bound, JobFailure, JobRunner, JobStore,
    JobView, Request, Response, Route, RouteError, Server, ShutdownHandle, SubmitError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Command-line configuration of the daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: Option<String>,
    /// Unix-domain socket path (alternative to `addr`).
    pub unix: Option<PathBuf>,
    /// Write the resolved bind address here once listening (how tests
    /// and scripts discover an ephemeral port).
    pub addr_file: Option<PathBuf>,
    /// Models to load: `(name, source)` where source is a model JSON
    /// path or `synthetic:<seed>`.
    pub models: Vec<(String, String)>,
    /// Deck-job worker threads.
    pub workers: usize,
    /// Most `/v1/eval` requests coalesced into one batched evaluation.
    pub max_batch: usize,
    /// Most `/v1/eval` requests queued before 429.
    pub queue_depth: usize,
    /// How long a lone eval request waits for peers to coalesce with.
    pub linger: Duration,
    /// Job state directories (checkpoints, traces, logs) live here.
    pub state_dir: PathBuf,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: None,
            unix: None,
            addr_file: None,
            models: Vec::new(),
            workers: 2,
            max_batch: 32,
            queue_depth: 256,
            linger: Duration::from_millis(2),
            state_dir: PathBuf::from("dpmd-serve-state"),
        }
    }
}

/// Parse `dpmd serve` arguments (everything after the subcommand).
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr")?),
            "--unix" => opts.unix = Some(PathBuf::from(value("--unix")?)),
            "--addr-file" => opts.addr_file = Some(PathBuf::from(value("--addr-file")?)),
            "--model" => {
                let spec = value("--model")?;
                let (name, source) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model wants NAME=SOURCE, got '{spec}'"))?;
                if name.is_empty() || source.is_empty() {
                    return Err(format!("--model wants NAME=SOURCE, got '{spec}'"));
                }
                opts.models.push((name.to_string(), source.to_string()));
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers wants a positive integer".to_string())?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--max-batch" => {
                opts.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|_| "--max-batch wants a positive integer".to_string())?;
                if opts.max_batch == 0 {
                    return Err("--max-batch must be at least 1".into());
                }
            }
            "--queue-depth" => {
                opts.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth wants a positive integer".to_string())?;
            }
            "--batch-linger-ms" => {
                let ms: u64 = value("--batch-linger-ms")?
                    .parse()
                    .map_err(|_| "--batch-linger-ms wants milliseconds".to_string())?;
                opts.linger = Duration::from_millis(ms);
            }
            "--state-dir" => opts.state_dir = PathBuf::from(value("--state-dir")?),
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    if opts.addr.is_some() && opts.unix.is_some() {
        return Err("--addr and --unix are mutually exclusive".into());
    }
    if opts.addr.is_none() && opts.unix.is_none() {
        opts.addr = Some("127.0.0.1:0".into());
    }
    if opts.models.is_empty() {
        // A daemon with nothing loaded serves nothing useful; default to a
        // small deterministic synthetic model so smoke tests and demos work
        // out of the box.
        opts.models.push(("default".into(), "synthetic:1".into()));
    }
    Ok(opts)
}

/// One loaded model: the potential (workspaces warm for the daemon's
/// lifetime) plus the request-validation facts about it.
struct ModelEntry {
    name: String,
    pot: DeepPotential,
    rcut: f64,
    n_types: usize,
    default_mode: PrecisionMode,
}

fn load_models(specs: &[(String, String)]) -> Result<HashMap<String, Arc<ModelEntry>>, AppError> {
    let mut registry = HashMap::new();
    for (name, source) in specs {
        let (model, default_mode) = if let Some(seed) = source.strip_prefix("synthetic:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| AppError::Deck(format!("bad synthetic model seed '{seed}'")))?;
            let cfg = DpConfig::small(1, 4.5, 16);
            let model = DpModel::new_random(cfg, &mut StdRng::seed_from_u64(seed));
            (model, PrecisionMode::Double)
        } else {
            let text = std::fs::read_to_string(source)
                .map_err(|e| AppError::Io(format!("cannot read model {source}: {e}")))?;
            let data: DpModelData = serde_json::from_str(&text)
                .map_err(|e| AppError::Deck(format!("bad model {source}: {e}")))?;
            (DpModel::from_data(&data), PrecisionMode::Double)
        };
        let rcut = model.config.rcut;
        let n_types = model.config.n_types();
        let entry = ModelEntry {
            name: name.clone(),
            pot: DeepPotential::new(model, default_mode),
            rcut,
            n_types,
            default_mode,
        };
        if registry.insert(name.clone(), Arc::new(entry)).is_some() {
            return Err(AppError::Deck(format!("model '{name}' given twice")));
        }
    }
    Ok(registry)
}

fn mode_name(mode: PrecisionMode) -> &'static str {
    match mode {
        PrecisionMode::Double => "double",
        PrecisionMode::Mixed => "mixed",
        PrecisionMode::HalfEmulated => "half",
    }
}

/// A validated eval request, ready for the batcher.
struct EvalJob {
    model: Arc<ModelEntry>,
    sys: System,
    mode: PrecisionMode,
    per_atom: bool,
    /// `deadline_ms` from the request body: how long the client is
    /// willing to wait. Checked at admission, not during evaluation.
    deadline: Option<Duration>,
}

impl std::fmt::Debug for EvalJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalJob")
            .field("model", &self.model.name)
            .field("natoms", &self.sys.len())
            .field("mode", &self.mode)
            .field("per_atom", &self.per_atom)
            .finish()
    }
}

/// Parse + validate an eval body against the registry. All rejection
/// happens here, before the queue — the backend only sees work that will
/// succeed, so responses are plain strings.
fn parse_eval(
    body: &[u8],
    models: &HashMap<String, Arc<ModelEntry>>,
) -> Result<EvalJob, (u16, String)> {
    let text =
        std::str::from_utf8(body).map_err(|_| (400u16, "body is not UTF-8".to_string()))?;
    let doc = Json::parse(text).map_err(|e| (400, format!("bad eval request: {e}")))?;

    let model_name = match doc.get("model") {
        None => "default",
        Some(v) => v
            .as_str()
            .ok_or_else(|| (400, "\"model\" must be a string".to_string()))?,
    };
    let model = models
        .get(model_name)
        .cloned()
        .ok_or_else(|| (404, format!("no such model '{model_name}'")))?;

    let mode = match doc.get("precision") {
        None => model.default_mode,
        Some(v) => match v.as_str() {
            Some("double") => PrecisionMode::Double,
            Some("mixed") => PrecisionMode::Mixed,
            Some("half") => PrecisionMode::HalfEmulated,
            _ => {
                return Err((
                    400,
                    "\"precision\" must be \"double\", \"mixed\", or \"half\"".to_string(),
                ))
            }
        },
    };

    let cell = doc
        .get("cell")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| (400, "\"cell\" must be [lx, ly, lz]".to_string()))?;
    let mut l = [0.0f64; 3];
    if cell.len() != 3 {
        return Err((400, "\"cell\" must be [lx, ly, lz]".to_string()));
    }
    for (i, v) in cell.iter().enumerate() {
        l[i] = v
            .as_f64()
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| (400, "\"cell\" lengths must be positive numbers".to_string()))?;
    }
    let cell = Cell::orthorhombic(l[0], l[1], l[2]);

    let positions_doc = doc
        .get("positions")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| (400, "\"positions\" must be an array of [x, y, z]".to_string()))?;
    if positions_doc.is_empty() {
        return Err((400, "\"positions\" must not be empty".to_string()));
    }
    let mut positions = Vec::with_capacity(positions_doc.len());
    for p in positions_doc {
        let xyz = p
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| (400, "each position must be [x, y, z]".to_string()))?;
        let mut r = [0.0f64; 3];
        for (i, v) in xyz.iter().enumerate() {
            r[i] = v
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| (400, "positions must be finite numbers".to_string()))?;
        }
        positions.push(r);
    }

    let types: Vec<usize> = match doc.get("types") {
        None => vec![0; positions.len()],
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| (400, "\"types\" must be an array of integers".to_string()))?;
            arr.iter()
                .map(|t| {
                    t.as_usize()
                        .ok_or_else(|| (400, "\"types\" must be non-negative integers".to_string()))
                })
                .collect::<Result<_, _>>()?
        }
    };
    if types.len() != positions.len() {
        return Err((
            400,
            format!(
                "{} types for {} positions",
                types.len(),
                positions.len()
            ),
        ));
    }
    let max_type = types.iter().copied().max().unwrap_or(0);
    if max_type >= model.n_types {
        return Err((
            400,
            format!(
                "type {max_type} out of range: model '{}' supports {} species",
                model.name, model.n_types
            ),
        ));
    }

    let masses: Vec<f64> = match doc.get("masses") {
        None => vec![1.0; max_type + 1],
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| (400, "\"masses\" must be an array of numbers".to_string()))?;
            arr.iter()
                .map(|m| {
                    m.as_f64()
                        .filter(|x| x.is_finite() && *x > 0.0)
                        .ok_or_else(|| (400, "masses must be positive numbers".to_string()))
                })
                .collect::<Result<_, _>>()?
        }
    };
    if masses.len() <= max_type {
        return Err((400, format!("type {max_type} has no mass entry")));
    }

    // Same guard as the deck path: the minimum-image neighbor search is
    // only valid when the cutoff fits the box.
    let limit = cell.max_cutoff();
    if model.rcut > limit {
        return Err((
            400,
            format!(
                "model cutoff {} exceeds the minimum-image limit {limit:.3} of this cell",
                model.rcut
            ),
        ));
    }

    let per_atom = match doc.get("per_atom") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| (400, "\"per_atom\" must be a boolean".to_string()))?,
    };

    let deadline = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|x| x.is_finite() && *x > 0.0)
                .map(|ms| Duration::from_micros((ms * 1000.0) as u64))
                .ok_or_else(|| (400, "\"deadline_ms\" must be a positive number".to_string()))?,
        ),
    };

    Ok(EvalJob {
        model,
        sys: System::new(cell, positions, types, masses),
        mode,
        per_atom,
        deadline,
    })
}

/// The batcher's backend: group a drained batch by (model, precision)
/// and run each group through one `compute_batch` call.
struct EvalBackend;

impl BatchBackend for EvalBackend {
    type Req = EvalJob;
    type Resp = String;

    fn run_batch(&self, requests: Vec<EvalJob>) -> Vec<String> {
        // Group indices by model identity + precision; within a group the
        // requests' padded environment tables concatenate into one §5.2.1
        // fixed-shape evaluation.
        let mut groups: Vec<(usize, u8, Vec<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let key = (Arc::as_ptr(&req.model) as usize, req.mode as u8);
            match groups.iter_mut().find(|(m, p, _)| (*m, *p) == key) {
                Some((_, _, idxs)) => idxs.push(i),
                None => groups.push((key.0, key.1, vec![i])),
            }
        }
        let mut out: Vec<Option<String>> = (0..requests.len()).map(|_| None).collect();
        for (_, _, idxs) in groups {
            let model = Arc::clone(&requests[idxs[0]].model);
            let mode = requests[idxs[0]].mode;
            let nls: Vec<NeighborList> = idxs
                .iter()
                .map(|&i| NeighborList::build(&requests[i].sys, model.rcut))
                .collect();
            let items: Vec<BatchItem> = idxs
                .iter()
                .zip(&nls)
                .map(|(&i, nl)| BatchItem {
                    sys: &requests[i].sys,
                    nl,
                })
                .collect();
            let results = model.pot.compute_batch(&items, mode);
            for (&i, r) in idxs.iter().zip(results) {
                let req = &requests[i];
                let mut fields = vec![
                    ("model", json::str(&model.name)),
                    ("precision", json::str(mode_name(mode))),
                    ("natoms", json::num(req.sys.len() as f64)),
                    ("energy", json::num(r.energy)),
                    (
                        "forces",
                        Json::Arr(
                            r.forces
                                .iter()
                                .map(|f| {
                                    Json::Arr(vec![
                                        json::num(f[0]),
                                        json::num(f[1]),
                                        json::num(f[2]),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if req.per_atom {
                    fields.push((
                        "per_atom_energy",
                        Json::Arr(r.per_atom_energy.iter().map(|&e| json::num(e)).collect()),
                    ));
                }
                out[i] = Some(json::obj(fields).to_string());
            }
        }
        out.into_iter().map(|o| o.expect("every request answered")).collect()
    }
}

/// Runs submitted decks through the same `app::run` as the CLI, with a
/// per-job state directory.
struct DeckRunner {
    state_dir: PathBuf,
    /// `dp-obs` trace/metrics recording is process-global, so at most one
    /// traced job runs at a time; untraced jobs are unaffected.
    obs_gate: Mutex<()>,
}

fn failure_class(e: &AppError) -> &'static str {
    match e {
        AppError::Deck(_) => "deck",
        AppError::Io(_) => "io",
        AppError::Ckpt(_) => "checkpoint",
        AppError::Fault(_) => "fault",
        AppError::Run(_) => "run",
    }
}

fn fail(e: AppError) -> JobFailure {
    JobFailure {
        class: failure_class(&e),
        message: e.to_string(),
    }
}

impl DeckRunner {
    /// Ensemble decks (top-level `"replicas"` key) run through the
    /// multi-replica engine, with the same job-dir confinement and
    /// restart-resume conveniences as plain MD decks.
    fn run_ensemble(&self, id: &str, deck: &str) -> Result<String, JobFailure> {
        let mut cfg = ensemble_app::parse_config(deck).map_err(fail)?;
        let job_dir = self.state_dir.join(id);
        std::fs::create_dir_all(&job_dir)
            .map_err(|e| fail(AppError::Io(format!("cannot create job dir: {e}"))))?;
        let in_job_dir = |p: &str| job_dir.join(p).to_string_lossy().into_owned();

        if cfg.checkpoint_every > 0 && cfg.checkpoint_path.is_none() {
            cfg.checkpoint_path = Some(in_job_dir("ckpt"));
        }
        if let Some(p) = &cfg.swap_log {
            if !p.starts_with('/') {
                cfg.swap_log = Some(in_job_dir(p));
            }
        }
        // Resubmitted after a daemon restart: continue from the existing
        // ensemble checkpoint (its meta container marks a valid save).
        if !cfg.resume && cfg.checkpoint_every > 0 {
            if let Some(base) = &cfg.checkpoint_path {
                if std::path::Path::new(&format!("{base}.meta")).exists() {
                    cfg.resume = true;
                }
            }
        }

        let mut log_file = std::fs::File::create(job_dir.join("log.txt"))
            .map_err(|e| fail(AppError::Io(format!("cannot create job log: {e}"))))?;
        let summary = ensemble_app::run(&cfg, |line| {
            let _ = writeln!(log_file, "{line}");
        })
        .map_err(fail)?;

        let mut fields = vec![
            ("kind", json::str("ensemble")),
            ("replicas", json::num(summary.replicas as f64)),
            ("steps", json::num(summary.steps as f64)),
            (
                "exchange_attempts",
                json::num(summary.exchange_attempts as f64),
            ),
            (
                "exchange_accepted",
                json::num(summary.exchange_accepted as f64),
            ),
        ];
        if let Some(n) = summary.dataset_size {
            fields.push(("dataset_size", json::num(n as f64)));
        }
        Ok(json::obj(fields).to_string())
    }
}

impl JobRunner for DeckRunner {
    fn run(&self, id: &str, deck: &str) -> Result<String, JobFailure> {
        if ensemble_app::is_ensemble_deck(deck) {
            return self.run_ensemble(id, deck);
        }
        let mut cfg = app::parse_config(deck).map_err(fail)?;
        let job_dir = self.state_dir.join(id);
        std::fs::create_dir_all(&job_dir)
            .map_err(|e| fail(AppError::Io(format!("cannot create job dir: {e}"))))?;
        let in_job_dir = |p: &str| job_dir.join(p).to_string_lossy().into_owned();

        // Jobs get an automatic checkpoint rotation (resume across daemon
        // restarts) and have their relative outputs confined to the job
        // dir so concurrent jobs never clobber each other.
        if cfg.checkpoint_every > 0 && cfg.checkpoint_path.is_none() {
            cfg.checkpoint_path = Some(in_job_dir("ckpt"));
        }
        if let Some(t) = &cfg.trajectory {
            if !t.starts_with('/') {
                cfg.trajectory = Some(in_job_dir(t));
            }
        }
        let wants_obs = cfg.trace_path.is_some() || cfg.metrics_path.is_some();
        if cfg.trace_path.is_some() {
            cfg.trace_path = Some(in_job_dir("trace.json"));
        }
        if cfg.metrics_path.is_some() {
            cfg.metrics_path = Some(in_job_dir("metrics.jsonl"));
        }
        // If the job was resubmitted after a daemon restart and its
        // rotation already has generations, continue from them.
        if cfg.resume.is_none() && cfg.checkpoint_every > 0 {
            if let Some(base) = &cfg.checkpoint_path {
                if std::path::Path::new(base).exists() {
                    cfg.resume = Some(base.clone());
                }
            }
        }

        let _gate = wants_obs.then(|| self.obs_gate.lock().unwrap());
        let mut log_file = std::fs::File::create(job_dir.join("log.txt"))
            .map_err(|e| fail(AppError::Io(format!("cannot create job log: {e}"))))?;
        let summary = app::run(&cfg, |line| {
            let _ = writeln!(log_file, "{line}");
        })
        .map_err(fail)?;

        let mut fields = vec![
            ("steps", json::num(cfg.steps as f64)),
            ("natoms", json::num(summary.final_system.len() as f64)),
            ("potential", json::str(summary.potential_name)),
            ("recoveries", json::num(summary.recoveries as f64)),
        ];
        if let Some(last) = summary.thermo.last() {
            fields.push(("final_temperature", json::num(last.temperature)));
            fields.push(("final_potential_energy", json::num(last.potential_energy)));
        }
        // Parallel jobs carry their §7.3 phase breakdown onto
        // `/v1/jobs/{id}`: per-phase share of rank busy time plus the
        // run-level imbalance ratio.
        if let Some(imb) = &summary.imbalance {
            let mut phases: Vec<(&str, Json)> = imb
                .phases
                .iter()
                .map(|p| (p.name, json::num(p.share)))
                .collect();
            phases.push(("imbalance", json::num(imb.imbalance)));
            fields.push(("phases", json::obj(phases)));
        }
        Ok(json::obj(fields).to_string())
    }
}

/// The ensemble-level `/metrics` section: replica-exchange acceptance,
/// batched-evaluation occupancy, and active-learning progress, read from
/// the always-on `dp_replica::metrics` counters. Present (zeroed) even
/// before the first ensemble job runs, so dashboards can bind to it
/// unconditionally.
fn ensemble_metrics_json() -> Json {
    use dp_replica::metrics as rm;
    let attempts = dp_obs::counter(rm::EXCHANGE_ATTEMPTS).get();
    let accepted = dp_obs::counter(rm::EXCHANGE_ACCEPTED).get();
    let mut fields = vec![
        ("exchange_attempts", json::num(attempts as f64)),
        ("exchange_accepted", json::num(accepted as f64)),
        (
            "exchange_acceptance",
            json::num(if attempts > 0 {
                accepted as f64 / attempts as f64
            } else {
                0.0
            }),
        ),
        ("ticks", json::num(dp_obs::counter(rm::TICKS).get() as f64)),
        (
            "batches",
            json::num(dp_obs::counter(rm::BATCHES).get() as f64),
        ),
        (
            "model_swaps",
            json::num(dp_obs::counter(rm::MODEL_SWAPS).get() as f64),
        ),
        (
            "active_rounds",
            json::num(dp_obs::counter(rm::ACTIVE_ROUNDS).get() as f64),
        ),
        (
            "active_labeled",
            json::num(dp_obs::counter(rm::ACTIVE_LABELED).get() as f64),
        ),
        (
            "steps_per_sec",
            json::num(dp_obs::counter(rm::REPLICAS_PER_SEC).get() as f64),
        ),
    ];
    let occ = dp_obs::hist::global(rm::BATCH_OCCUPANCY).snapshot();
    fields.push(("batch_occupancy_p50", json::num(occ.quantile(0.50) as f64)));
    fields.push(("batch_occupancy_p95", json::num(occ.quantile(0.95) as f64)));
    json::obj(fields)
}

fn job_json(v: &JobView) -> Json {
    let mut fields = vec![
        ("id", json::str(&v.id)),
        ("state", json::str(v.state.name())),
        ("age_secs", json::num(v.age_secs)),
        ("run_secs", json::num(v.run_secs)),
    ];
    match &v.state {
        dp_serve::JobState::Done { result } => {
            // Result summaries are JSON we produced; embed structurally.
            fields.push((
                "result",
                Json::parse(result).unwrap_or_else(|_| json::str(result)),
            ));
        }
        dp_serve::JobState::Failed { failure } => {
            fields.push((
                "error",
                json::obj(vec![
                    ("class", json::str(failure.class)),
                    ("message", json::str(&failure.message)),
                ]),
            ));
        }
        _ => {}
    }
    json::obj(fields)
}

/// Start the daemon and serve until a shutdown request drains it.
/// Returns once the last in-flight request, queued eval, and queued job
/// have finished.
pub fn run_serve(opts: &ServeOptions, mut log: impl FnMut(&str)) -> Result<(), AppError> {
    let started = Instant::now();
    let models = Arc::new(load_models(&opts.models)?);
    for m in models.values() {
        log(&format!(
            "model '{}': rcut {} Å, {} species, default precision {}",
            m.name,
            m.rcut,
            m.n_types,
            mode_name(m.default_mode)
        ));
    }
    std::fs::create_dir_all(&opts.state_dir)
        .map_err(|e| AppError::Io(format!("cannot create state dir: {e}")))?;

    // Pre-register the ensemble-level counters/histogram and the roofline
    // gauges so the very first scrape — before any job has run — already
    // carries every series a dashboard binds to (closes the ROADMAP
    // ensemble-observability item).
    {
        use dp_replica::metrics as rm;
        for name in [
            rm::TICKS,
            rm::BATCHES,
            rm::NL_REBUILDS,
            rm::EXCHANGE_ATTEMPTS,
            rm::EXCHANGE_ACCEPTED,
            rm::MODEL_SWAPS,
            rm::ACTIVE_ROUNDS,
            rm::ACTIVE_LABELED,
            rm::REPLICAS_PER_SEC,
        ] {
            dp_obs::counter(name);
        }
        dp_obs::hist::global(rm::BATCH_OCCUPANCY);
        for phase in ["compute", "comm", "wait"] {
            dp_obs::prom::publish_gauge(
                "roofline.achieved_gflops",
                &[("phase", phase)],
                0.0,
            );
        }
    }

    let store = JobStore::new();
    let runner = Arc::new(DeckRunner {
        state_dir: opts.state_dir.clone(),
        obs_gate: Mutex::new(()),
    });
    let workers = dp_serve::job::spawn_workers(&store, runner, opts.workers);

    // One batcher (queue + worker) PER MODEL: requests only ever coalesce
    // with peers against the same potential, and a deep backlog on one
    // model cannot head-of-line block another model's evaluations.
    let batchers: Arc<HashMap<String, Arc<Batcher<EvalBackend>>>> = Arc::new(
        models
            .keys()
            .map(|name| {
                (
                    name.clone(),
                    Arc::new(Batcher::new(
                        EvalBackend,
                        BatchOptions {
                            max_batch: opts.max_batch,
                            max_depth: opts.queue_depth,
                            linger: opts.linger,
                            workers: 1,
                        },
                    )),
                )
            })
            .collect(),
    );

    let shutdown = ShutdownHandle::new();
    let bind = match (&opts.addr, &opts.unix) {
        (_, Some(path)) => Bind::Unix(path.clone()),
        (Some(addr), None) => Bind::Tcp(addr.clone()),
        (None, None) => unreachable!("parse_serve_args always sets a bind"),
    };
    let server = Server::bind(&bind, shutdown.clone())
        .map_err(|e| AppError::Io(format!("cannot bind {bind:?}: {e}")))?;
    let bound = server.bound().clone();
    log(&format!("dpmd serve: listening on {bound}"));
    if let Some(path) = &opts.addr_file {
        let text = match &bound {
            Bound::Tcp(a) => a.to_string(),
            Bound::Unix(p) => format!("unix:{}", p.display()),
        };
        std::fs::write(path, text)
            .map_err(|e| AppError::Io(format!("cannot write addr file: {e}")))?;
    }

    let handler: dp_serve::Handler = {
        let models = Arc::clone(&models);
        let store = store.clone();
        let batchers = Arc::clone(&batchers);
        let shutdown = shutdown.clone();
        let state_dir = opts.state_dir.clone();
        Arc::new(move |req: &Request| {
            handle(
                req, &models, &store, &batchers, &shutdown, &state_dir, started,
            )
        })
    };
    server.serve(handler);

    // The accept loop is done; finish everything already admitted.
    store.drain();
    for w in workers {
        let _ = w.join();
    }
    log("dpmd serve: drained, shutting down");
    Ok(())
}

fn handle(
    req: &Request,
    models: &HashMap<String, Arc<ModelEntry>>,
    store: &JobStore,
    batchers: &HashMap<String, Arc<Batcher<EvalBackend>>>,
    shutdown: &ShutdownHandle,
    state_dir: &std::path::Path,
    started: Instant,
) -> Response {
    let matched = match route(&req.method, &req.path) {
        Ok(r) => r,
        Err(RouteError::NotFound) => return Response::error(404, "no such endpoint"),
        Err(RouteError::MethodNotAllowed(allowed)) => {
            return Response::error(405, &format!("method not allowed; use {allowed}"))
                .with_header("Allow", allowed)
        }
    };
    match matched {
        Route::Health => Response::json(200, "{\"ok\":true}"),
        Route::Models => {
            let mut entries: Vec<_> = models.values().collect();
            entries.sort_by_key(|m| m.name.clone());
            let list = Json::Arr(
                entries
                    .iter()
                    .map(|m| {
                        json::obj(vec![
                            ("name", json::str(&m.name)),
                            ("rcut", json::num(m.rcut)),
                            ("n_types", json::num(m.n_types as f64)),
                            ("default_precision", json::str(mode_name(m.default_mode))),
                        ])
                    })
                    .collect(),
            );
            Response::json(200, json::obj(vec![("models", list)]).to_string())
        }
        Route::Metrics => {
            let (queued, running, done, failed) = store.counts();
            // Publish the daemon-level gauges into the prom registry
            // before rendering either format, so both expositions see
            // the same snapshot (per-model queue depths become labeled
            // series).
            dp_obs::prom::publish_gauge(
                "serve.uptime_secs",
                &[],
                started.elapsed().as_secs_f64(),
            );
            dp_obs::prom::publish_gauge("serve.jobs.queued", &[], queued as f64);
            dp_obs::prom::publish_gauge("serve.jobs.running", &[], running as f64);
            for (name, b) in batchers.iter() {
                dp_obs::prom::publish_gauge(
                    "serve.eval.queue_depth",
                    &[("model", name)],
                    b.depth() as f64,
                );
            }
            if req.query.contains("format=prometheus") {
                return Response {
                    status: 200,
                    content_type: dp_obs::prom::CONTENT_TYPE,
                    body: dp_obs::prom::render().into_bytes(),
                    headers: Vec::new(),
                };
            }
            let obs = Json::parse(&dp_obs::serve::snapshot_json()).unwrap_or(Json::Null);
            let doc = json::obj(vec![
                ("uptime_secs", json::num(started.elapsed().as_secs_f64())),
                (
                    "jobs",
                    json::obj(vec![
                        ("queued", json::num(queued as f64)),
                        ("running", json::num(running as f64)),
                        ("done", json::num(done as f64)),
                        ("failed", json::num(failed as f64)),
                    ]),
                ),
                (
                    "eval_queue_depth",
                    json::num(batchers.values().map(|b| b.depth()).sum::<usize>() as f64),
                ),
                ("eval_queue_depths", {
                    let mut names: Vec<&String> = batchers.keys().collect();
                    names.sort();
                    json::obj(
                        names
                            .into_iter()
                            .map(|n| (n.as_str(), json::num(batchers[n].depth() as f64)))
                            .collect(),
                    )
                }),
                ("ensemble", ensemble_metrics_json()),
                ("obs", obs),
            ]);
            Response::json(200, doc.to_string())
        }
        Route::SubmitJob => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(400, "deck is not UTF-8");
            };
            // Validate the deck up front so a typo answers 400 now, not a
            // failed job later. Ensemble decks validate against their own
            // schema.
            let validated = if ensemble_app::is_ensemble_deck(text) {
                ensemble_app::parse_config(text).map(|_| ())
            } else {
                app::parse_config(text).map(|_| ())
            };
            if let Err(e) = validated {
                return Response::error(400, &e.to_string());
            }
            match store.submit(text.to_string()) {
                Some(id) => Response::json(
                    202,
                    json::obj(vec![
                        ("id", json::str(&id)),
                        ("state", json::str("queued")),
                    ])
                    .to_string(),
                ),
                None => Response::error(503, "daemon is draining"),
            }
        }
        Route::ListJobs => {
            let jobs = Json::Arr(store.list().iter().map(job_json).collect());
            Response::json(200, json::obj(vec![("jobs", jobs)]).to_string())
        }
        Route::JobStatus(id) => match store.get(&id) {
            Some(v) => Response::json(200, job_json(&v).to_string()),
            None => Response::error(404, &format!("no such job '{id}'")),
        },
        Route::JobTrace(id) => {
            if store.get(&id).is_none() {
                return Response::error(404, &format!("no such job '{id}'"));
            }
            match std::fs::read(state_dir.join(&id).join("trace.json")) {
                Ok(body) => Response {
                    status: 200,
                    content_type: "application/json",
                    body,
                    headers: Vec::new(),
                },
                Err(_) => Response::error(
                    404,
                    "no trace for this job (submit with \"trace_path\" set, and wait for it to finish)",
                ),
            }
        }
        Route::Eval => {
            dp_obs::counter(dp_obs::serve::EVAL_REQUESTS).add(1);
            let job = match parse_eval(&req.body, models) {
                Ok(j) => j,
                Err((status, msg)) => return Response::error(status, &msg),
            };
            // Route to the target model's own queue; parse_eval already
            // guaranteed the model exists in the registry.
            let batcher = &batchers[&job.model.name];
            let deadline = job.deadline;
            match batcher.submit_with_deadline(job, deadline) {
                Ok(body) => Response::json(200, body),
                Err(SubmitError::QueueFull) => {
                    Response::error(429, "eval queue is full; retry later")
                        .with_header("Retry-After", "1")
                }
                Err(SubmitError::DeadlineExceeded { estimated_wait_us }) => Response::error(
                    429,
                    &format!(
                        "deadline_ms too short: estimated queue wait is {} ms",
                        estimated_wait_us.div_ceil(1000)
                    ),
                )
                .with_header("Retry-After", "1"),
                Err(SubmitError::ShuttingDown) => Response::error(503, "daemon is draining"),
            }
        }
        Route::Shutdown => {
            store.drain();
            shutdown.request();
            Response::json(200, "{\"draining\":true}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_body(n: usize) -> Vec<u8> {
        // n atoms on a sparse line in a roomy box: valid for the synthetic
        // model's 4.5 Å cutoff.
        let positions: Vec<String> = (0..n)
            .map(|i| format!("[{}.0, 5.0, 5.0]", 1 + 2 * i))
            .collect();
        format!(
            "{{\"cell\": [20.0, 12.0, 12.0], \"positions\": [{}]}}",
            positions.join(", ")
        )
        .into_bytes()
    }

    fn registry() -> HashMap<String, Arc<ModelEntry>> {
        load_models(&[("default".into(), "synthetic:1".into())]).unwrap()
    }

    #[test]
    fn parse_serve_args_defaults_and_flags() {
        let opts = parse_serve_args(&[]).unwrap();
        assert_eq!(opts.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.models, vec![("default".into(), "synthetic:1".into())]);

        let opts = parse_serve_args(&[
            "--addr".into(),
            "0.0.0.0:8700".into(),
            "--model".into(),
            "cu=models/cu.json".into(),
            "--max-batch".into(),
            "8".into(),
            "--queue-depth".into(),
            "16".into(),
            "--batch-linger-ms".into(),
            "50".into(),
            "--workers".into(),
            "4".into(),
        ])
        .unwrap();
        assert_eq!(opts.addr.as_deref(), Some("0.0.0.0:8700"));
        assert_eq!(opts.models, vec![("cu".into(), "models/cu.json".into())]);
        assert_eq!(opts.max_batch, 8);
        assert_eq!(opts.queue_depth, 16);
        assert_eq!(opts.linger, Duration::from_millis(50));
        assert_eq!(opts.workers, 4);

        assert!(parse_serve_args(&["--model".into(), "noequals".into()]).is_err());
        assert!(parse_serve_args(&["--bogus".into()]).is_err());
        assert!(parse_serve_args(&[
            "--addr".into(),
            "a:1".into(),
            "--unix".into(),
            "/tmp/x".into()
        ])
        .is_err());
    }

    #[test]
    fn eval_requests_validate_against_the_registry() {
        let models = registry();
        let ok = parse_eval(&eval_body(3), &models).unwrap();
        assert_eq!(ok.sys.len(), 3);
        assert_eq!(ok.mode, PrecisionMode::Double);
        assert!(!ok.per_atom);

        // Unknown model is 404, not 400.
        let (status, _) =
            parse_eval(b"{\"model\": \"nope\", \"cell\": [20,12,12], \"positions\": [[1,1,1]]}", &models)
                .unwrap_err();
        assert_eq!(status, 404);

        // Cutoff bigger than the minimum-image limit of the cell.
        let (status, msg) =
            parse_eval(b"{\"cell\": [6.0, 6.0, 6.0], \"positions\": [[1,1,1]]}", &models)
                .unwrap_err();
        assert_eq!(status, 400);
        assert!(msg.contains("minimum-image"), "{msg}");

        // Type out of range for a 1-species model.
        let (status, msg) = parse_eval(
            b"{\"cell\": [20,12,12], \"positions\": [[1,1,1]], \"types\": [1]}",
            &models,
        )
        .unwrap_err();
        assert_eq!(status, 400);
        assert!(msg.contains("species"), "{msg}");

        // Malformed JSON.
        let (status, _) = parse_eval(b"{not json", &models).unwrap_err();
        assert_eq!(status, 400);
    }

    #[test]
    fn eval_backend_answers_every_request_in_order() {
        let models = registry();
        let jobs: Vec<EvalJob> = [2usize, 3, 4]
            .iter()
            .map(|&n| parse_eval(&eval_body(n), &models).unwrap())
            .collect();
        let solo: Vec<String> = jobs
            .iter()
            .map(|j| {
                let req = parse_eval(&eval_body(j.sys.len()), &models).unwrap();
                EvalBackend.run_batch(vec![req]).remove(0)
            })
            .collect();
        let batched = EvalBackend.run_batch(jobs);
        assert_eq!(batched.len(), 3);
        // The batched responses are byte-identical to solo evaluation:
        // with shortest-round-trip float printing this is bit equality of
        // every energy and force component.
        assert_eq!(batched, solo);
        for (body, n) in batched.iter().zip([2usize, 3, 4]) {
            let doc = Json::parse(body).unwrap();
            assert_eq!(doc.get("natoms").and_then(|v| v.as_usize()), Some(n));
            assert_eq!(
                doc.get("forces").and_then(|v| v.as_arr()).map(|a| a.len()),
                Some(n)
            );
            assert!(doc.get("per_atom_energy").is_none());
        }
    }

    #[test]
    fn deck_runner_reports_typed_failures() {
        let dir = std::env::temp_dir().join(format!("dp-serve-runner-{}", std::process::id()));
        let runner = DeckRunner {
            state_dir: dir.clone(),
            obs_gate: Mutex::new(()),
        };
        let err = runner.run("job-t1", "{\"not\": \"a deck\"}").unwrap_err();
        assert_eq!(err.class, "deck");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
