//! Meta-crate re-exporting the DeePMD-rs workspace, plus the `dpmd`
//! application layer (JSON input decks -> MD runs) and the `dpmd serve`
//! inference daemon (models loaded once, jobs and batched evaluations
//! multiplexed over HTTP).
pub mod app;
pub mod ensemble_app;
pub mod serve_app;
pub use deepmd_core as core;
pub use dp_replica as replica;
pub use dp_serve as serve;
pub use dp_obs as obs;
pub use dp_autograd as autograd;
pub use dp_linalg as linalg;
pub use dp_md as md;
pub use dp_nn as nn;
pub use dp_parallel as parallel;
pub use dp_perfmodel as perfmodel;
pub use dp_train as train;
