//! Integration: the Deep Potential under the domain-decomposition driver
//! must reproduce the serial results — forces, energy, and trajectories.

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::integrate::{run_md, MdOptions};
use deepmd_repro::md::{lattice, NeighborList, Potential, System};
use deepmd_repro::parallel::{run_parallel_md, ParallelOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn dp_and_system() -> (Arc<DeepPotential>, System) {
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = DpConfig {
        rcut: 4.0,
        rcut_smth: 1.0,
        sel: vec![32],
        embedding: vec![8, 16],
        fitting: vec![24, 24],
        axis_neurons: 4,
    };
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let dp = Arc::new(DeepPotential::new(model, PrecisionMode::Double));
    let mut sys = lattice::copper([6, 6, 6]);
    sys.init_velocities(150.0, &mut rng);
    (dp, sys)
}

#[test]
fn parallel_dp_energy_matches_serial() {
    let (dp, sys) = dp_and_system();
    let nl = NeighborList::build(&sys, dp.cutoff() + 2.0);
    let serial = dp.compute(&sys, &nl);

    let run =
        run_parallel_md(&sys, dp.clone(), [2, 2, 2], &ParallelOptions::default(), 0).unwrap();
    let pe = run.thermo[0].potential_energy;
    assert!(
        (pe - serial.energy).abs() < 1e-8,
        "parallel {pe} vs serial {}",
        serial.energy
    );
}

#[test]
fn parallel_dp_trajectory_matches_serial() {
    let (dp, sys) = dp_and_system();
    let opts = ParallelOptions {
        md: MdOptions {
            dt: 1.0e-3,
            skin: 1.5,
            rebuild_every: 10,
            thermo_every: 10,
            ..MdOptions::default()
        },
        blocking_reduce: false,
        ..ParallelOptions::default()
    };
    let steps = 20;

    let mut serial_sys = sys.clone();
    run_md(&mut serial_sys, dp.as_ref(), &opts.md, steps, |_| {});

    let par = run_parallel_md(&sys, dp.clone(), [2, 2, 1], &opts, steps).unwrap();

    let mut max_d = 0.0f64;
    for i in 0..serial_sys.len() {
        let d = serial_sys
            .cell
            .distance2(serial_sys.positions[i], par.system.positions[i])
            .sqrt();
        max_d = max_d.max(d);
    }
    assert!(max_d < 1e-7, "DP trajectories diverged by {max_d} Å");
}

#[test]
fn parallel_dp_nve_is_stable() {
    let (dp, sys) = dp_and_system();
    let opts = ParallelOptions {
        md: MdOptions {
            dt: 1.0e-3,
            skin: 1.5,
            rebuild_every: 10,
            thermo_every: 20,
            ..MdOptions::default()
        },
        blocking_reduce: false,
        ..ParallelOptions::default()
    };
    let run = run_parallel_md(&sys, dp, [2, 2, 2], &opts, 80).unwrap();
    let drift = (run.thermo.last().unwrap().total_energy()
        - run.thermo.first().unwrap().total_energy())
    .abs()
        / sys.len() as f64;
    assert!(drift < 5e-5, "parallel DP NVE drift {drift} eV/atom");
}
