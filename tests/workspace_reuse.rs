//! §5.2.2 correctness side of the memory-trunk tentpole: reusing a dirty
//! workspace must be *bit-identical* to the allocating paths, no matter
//! what the buffers held before, which precision the model runs in, or how
//! the atom count changed between calls (domain migration resizes the
//! trunk in place).
//!
//! Property-style sweep: several seeds × several system sizes, visited in
//! an order that forces both grow-in-place and shrink-in-place reuse,
//! always comparing against a freshly allocated reference.

use deepmd_repro::core::eval::{evaluate, evaluate_into, EvalOutput};
use deepmd_repro::core::format::{format_optimized, format_optimized_into, FormattedEnv};
use deepmd_repro::core::codec::Codec;
use deepmd_repro::core::{DpConfig, DpModel, EvalWorkspace};
use deepmd_repro::md::{lattice, units, NeighborList, System};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make_system(reps: [usize; 3], seed: u64) -> (System, NeighborList) {
    let mut sys = lattice::fcc(3.615, reps, units::MASS_CU);
    let mut rng = StdRng::seed_from_u64(seed);
    sys.perturb(0.1, &mut rng);
    let nl = NeighborList::build(&sys, 4.5);
    (sys, nl)
}

fn assert_fmt_bits_equal(reused: &FormattedEnv, fresh: &FormattedEnv, what: &str) {
    assert_eq!(reused.n_atoms, fresh.n_atoms, "{what}: n_atoms");
    assert_eq!(reused.sel, fresh.sel, "{what}: sel");
    assert_eq!(reused.indices, fresh.indices, "{what}: indices");
    assert_eq!(reused.overflowed, fresh.overflowed, "{what}: overflowed");
    for (name, a, b) in [
        ("env", &reused.env, &fresh.env),
        ("denv", &reused.denv, &fresh.denv),
        ("disp", &reused.disp, &fresh.disp),
    ] {
        assert_eq!(a.len(), b.len(), "{what}: {name} length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {name}[{i}] differs: {x} vs {y}"
            );
        }
    }
}

fn assert_eval_bits_equal(reused: &EvalOutput, fresh: &EvalOutput, what: &str) {
    assert_eq!(
        reused.energy.to_bits(),
        fresh.energy.to_bits(),
        "{what}: energy {} vs {}",
        reused.energy,
        fresh.energy
    );
    assert_eq!(
        reused.per_atom_energy.len(),
        fresh.per_atom_energy.len(),
        "{what}: per-atom energy length"
    );
    for (i, (a, b)) in reused
        .per_atom_energy
        .iter()
        .zip(&fresh.per_atom_energy)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: per_atom_energy[{i}]");
    }
    assert_eq!(reused.forces.len(), fresh.forces.len(), "{what}: forces length");
    for (i, (a, b)) in reused.forces.iter().zip(&fresh.forces).enumerate() {
        for k in 0..3 {
            assert_eq!(a[k].to_bits(), b[k].to_bits(), "{what}: forces[{i}][{k}]");
        }
    }
    for k in 0..6 {
        assert_eq!(
            reused.virial[k].to_bits(),
            fresh.virial[k].to_bits(),
            "{what}: virial[{k}]"
        );
    }
}

#[test]
fn dirty_formatted_env_is_bit_identical_to_fresh() {
    let cfg = DpConfig::small(1, 4.5, 16);
    // One long-lived trunk, visited across sizes 108 → 144 → 256 → 108
    // atoms so reuse has to both shrink and grow in place.
    let mut ws = FormattedEnv::alloc(0, &cfg);
    // Poison the reusable buffers so stale contents would be caught.
    ws.env.iter_mut().for_each(|v| *v = f64::NAN);
    for (reps, seed) in [
        ([3, 3, 3], 11u64),
        ([4, 3, 3], 12),
        ([4, 4, 4], 13),
        ([3, 3, 3], 14),
    ] {
        let (sys, nl) = make_system(reps, seed);
        for codec in [Codec::PaperDecimal, Codec::Binary] {
            format_optimized_into(&mut ws, &sys, &nl, &cfg, codec);
            let fresh = format_optimized(&sys, &nl, &cfg, codec);
            assert_fmt_bits_equal(&ws, &fresh, &format!("reps {reps:?} codec {codec:?}"));
        }
    }
}

#[test]
fn dirty_eval_workspace_is_bit_identical_to_fresh_f64() {
    let cfg = DpConfig::small(1, 4.5, 16);
    let mut rng = StdRng::seed_from_u64(21);
    let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
    let mut ws = EvalWorkspace::<f64>::new(&cfg);
    let mut out = EvalOutput {
        energy: f64::NAN,
        per_atom_energy: vec![f64::NAN; 7],
        forces: vec![[f64::NAN; 3]; 7],
        virial: [f64::NAN; 6],
    };
    for (reps, seed) in [([3, 3, 3], 31u64), ([4, 3, 3], 32), ([3, 3, 3], 33)] {
        let (sys, nl) = make_system(reps, seed);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        evaluate_into(&model, &fmt, &sys.types, sys.len(), None, &mut ws, &mut out);
        let fresh = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        assert_eval_bits_equal(&out, &fresh, &format!("f64 reps {reps:?}"));
    }
}

#[test]
fn dirty_eval_workspace_is_bit_identical_to_fresh_f32() {
    let cfg = DpConfig::small(1, 4.5, 16);
    let mut rng = StdRng::seed_from_u64(22);
    let model64 = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
    let model = model64.cast::<f32>();
    let mut ws = EvalWorkspace::<f32>::new(&cfg);
    let mut out = EvalOutput {
        energy: 0.0,
        per_atom_energy: Vec::new(),
        forces: Vec::new(),
        virial: [0.0; 6],
    };
    for (reps, seed) in [([4, 3, 3], 41u64), ([3, 3, 3], 42), ([4, 3, 3], 43)] {
        let (sys, nl) = make_system(reps, seed);
        let fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        evaluate_into(&model, &fmt, &sys.types, sys.len(), None, &mut ws, &mut out);
        let fresh = evaluate(&model, &fmt, &sys.types, sys.len(), None);
        assert_eval_bits_equal(&out, &fresh, &format!("f32 reps {reps:?}"));
    }
}

#[test]
fn two_type_system_reuses_workspace_bit_identically() {
    // Multi-type path: per-type embedding slots and blocks in the trunk.
    let cfg = DpConfig::small(2, 4.5, 12);
    let mut rng = StdRng::seed_from_u64(51);
    let model = DpModel::<f64>::new_random(cfg.clone(), &mut rng);
    let mut ws = EvalWorkspace::<f64>::new(&cfg);
    let mut fmt_ws = FormattedEnv::alloc(0, &cfg);
    let mut out = EvalOutput {
        energy: 0.0,
        per_atom_energy: Vec::new(),
        forces: Vec::new(),
        virial: [0.0; 6],
    };
    for (reps, seed) in [([3, 3, 3], 61u64), ([4, 3, 3], 62)] {
        let mut sys = {
            let base = lattice::fcc(3.615, reps, units::MASS_CU);
            let n = base.len();
            let types: Vec<usize> = (0..n).map(|i| i % 2).collect();
            System::new(
                base.cell.clone(),
                base.positions.clone(),
                types,
                vec![units::MASS_CU, 58.693],
            )
        };
        sys.perturb(0.1, &mut StdRng::seed_from_u64(seed));
        let nl = NeighborList::build(&sys, 4.5);

        format_optimized_into(&mut fmt_ws, &sys, &nl, &cfg, Codec::PaperDecimal);
        let fresh_fmt = format_optimized(&sys, &nl, &cfg, Codec::PaperDecimal);
        assert_fmt_bits_equal(&fmt_ws, &fresh_fmt, &format!("two-type reps {reps:?}"));

        evaluate_into(&model, &fmt_ws, &sys.types, sys.len(), None, &mut ws, &mut out);
        let fresh = evaluate(&model, &fresh_fmt, &sys.types, sys.len(), None);
        assert_eval_bits_equal(&out, &fresh, &format!("two-type reps {reps:?}"));
    }
}
