//! End-to-end checkpoint/restart: a `dpmd` deck killed at step N and
//! resumed reproduces the uninterrupted run bit-exactly (NVE and
//! Berendsen), a corrupted newest checkpoint falls back to the previous
//! rotation slot, and a resumed run appends to — never truncates or
//! duplicates — the trajectory.

use deepmd_repro::app::{parse_config, run, RunSummary};

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lj_deck(steps: usize, thermostat: &str, ckpt: &str, resume: &str, traj: &str) -> String {
    format!(
        r#"{{
            "system": {{"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948}},
            "potential": {{"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0}},
            "temperature": 40.0,
            {thermostat}
            "dt_fs": 2.0,
            "steps": {steps},
            "thermo_every": 10,
            "checkpoint_every": 20,
            {ckpt}
            {resume}
            {traj}
            "seed": 7
        }}"#
    )
}

fn run_deck(deck: &str) -> (RunSummary, Vec<String>) {
    let cfg = parse_config(deck).unwrap();
    let mut lines = Vec::new();
    let summary = run(&cfg, |l| lines.push(l.to_string())).unwrap();
    (summary, lines)
}

/// Thermo samples recorded strictly after `step`, the overlap window a
/// resumed run shares with the uninterrupted one.
fn tail(s: &RunSummary, step: usize) -> Vec<(usize, f64, f64, f64, f64)> {
    s.thermo
        .iter()
        .filter(|t| t.step > step)
        .map(|t| {
            (
                t.step,
                t.potential_energy,
                t.kinetic_energy,
                t.temperature,
                t.pressure,
            )
        })
        .collect()
}

fn assert_resume_matches_straight(thermostat: &str, name: &str) {
    let dir = test_dir(name);
    let ckpt_a = dir.join("straight.ckpt").display().to_string();
    let ckpt_b = dir.join("killed.ckpt").display().to_string();

    // The uninterrupted run: 80 steps with the same checkpoint stride (the
    // stride fixes the neighbor-rebuild schedule, so it must match).
    let (straight, _) = run_deck(&lj_deck(
        80,
        thermostat,
        &format!(r#""checkpoint_path": "{ckpt_a}","#),
        "",
        "",
    ));

    // The "killed at step 40" run, then a resume of the same deck to 80.
    let (_, _) = run_deck(&lj_deck(
        40,
        thermostat,
        &format!(r#""checkpoint_path": "{ckpt_b}","#),
        "",
        "",
    ));
    let (resumed, lines) = run_deck(&lj_deck(
        80,
        thermostat,
        &format!(r#""checkpoint_path": "{ckpt_b}","#),
        &format!(r#""resume": "{ckpt_b}","#),
        "",
    ));

    assert!(
        lines.iter().any(|l| l.contains("resuming from")),
        "no resume log line in {lines:?}"
    );
    let want = tail(&straight, 40);
    let got = tail(&resumed, 40);
    assert_eq!(want.len(), 4, "expected samples at 50..=80, got {want:?}");
    assert_eq!(want, got, "resumed thermo is not bit-exact ({name})");
}

#[test]
fn dpmd_resume_is_bit_exact_nve() {
    assert_resume_matches_straight("", "dpmd-ckpt-nve");
}

#[test]
fn dpmd_resume_is_bit_exact_berendsen() {
    assert_resume_matches_straight(r#""thermostat": "berendsen","#, "dpmd-ckpt-berendsen");
}

#[test]
fn corrupted_newest_checkpoint_falls_back_to_previous_slot() {
    let dir = test_dir("dpmd-ckpt-corrupt");
    let base = dir.join("run.ckpt").display().to_string();
    let ckpt = format!(r#""checkpoint_path": "{base}","#);

    // 80 steps, checkpoints at 20/40/60/80 → rotation holds 80, .1 = 60,
    // .2 = 40 (keep defaults to 3).
    let (straight, _) = run_deck(&lj_deck(80, "", &ckpt, "", ""));

    // Flip bytes in the middle of the newest generation: CRC must reject
    // it and the loader must fall back to the step-60 slot.
    let mut bytes = std::fs::read(&base).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b ^= 0xff;
    }
    std::fs::write(&base, &bytes).unwrap();

    let resume = format!(r#""resume": "{base}","#);
    let (resumed, lines) = run_deck(&lj_deck(80, "", &ckpt, &resume, ""));
    let from = lines
        .iter()
        .find(|l| l.contains("resuming from"))
        .expect("resume log line");
    assert!(
        from.contains("run.ckpt.1") && from.contains("step 60"),
        "expected fallback to the .1 slot at step 60, got: {from}"
    );
    assert_eq!(
        tail(&straight, 60),
        tail(&resumed, 60),
        "post-fallback thermo should still be bit-exact"
    );
}

#[test]
fn resumed_run_appends_to_trajectory_without_duplicates() {
    let dir = test_dir("dpmd-ckpt-traj");
    let base = dir.join("run.ckpt").display().to_string();
    let traj_path = dir.join("run.xyz");
    let ckpt = format!(r#""checkpoint_path": "{base}","#);
    let traj = format!(r#""trajectory": "{}","#, traj_path.display());

    run_deck(&lj_deck(40, "", &ckpt, "", &traj));
    let resume = format!(r#""resume": "{base}","#);
    run_deck(&lj_deck(80, "", &ckpt, &resume, &traj));

    let text = std::fs::read_to_string(&traj_path).unwrap();
    let mut steps: Vec<usize> = text
        .lines()
        .filter_map(|l| {
            let at = l.rfind("step=")?;
            l[at + 5..].split_whitespace().next()?.parse().ok()
        })
        .collect();
    assert_eq!(
        steps,
        vec![20, 40, 60, 80],
        "frames must appear once each, in order"
    );
    steps.dedup();
    assert_eq!(steps.len(), 4, "resume duplicated a frame");
}

#[test]
fn resumed_run_does_not_duplicate_checkpoint_step_sample() {
    // A run killed at step 40 already recorded the step-40 thermo sample;
    // the resume must start sampling at 50, emitting neither a fresh
    // step-0 record nor a second step-40 one.
    let dir = test_dir("dpmd-ckpt-dup-sample");
    let base = dir.join("run.ckpt").display().to_string();
    let ckpt = format!(r#""checkpoint_path": "{base}","#);

    run_deck(&lj_deck(40, "", &ckpt, "", ""));
    let resume = format!(r#""resume": "{base}","#);
    let (resumed, _) = run_deck(&lj_deck(80, "", &ckpt, &resume, ""));

    let steps: Vec<usize> = resumed.thermo.iter().map(|t| t.step).collect();
    assert_eq!(
        steps,
        vec![50, 60, 70, 80],
        "resume re-emitted an already-recorded sample"
    );
}

#[test]
fn checkpoint_beyond_deck_steps_is_a_clean_error() {
    let dir = test_dir("dpmd-ckpt-overrun");
    let base = dir.join("run.ckpt").display().to_string();
    let ckpt = format!(r#""checkpoint_path": "{base}","#);
    run_deck(&lj_deck(40, "", &ckpt, "", ""));

    let resume = format!(r#""resume": "{base}","#);
    let cfg = parse_config(&lj_deck(20, "", &ckpt, &resume, "")).unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 4, "overrun is a checkpoint error: {err}");
    assert!(
        err.to_string().contains("step 40"),
        "unexpected error: {err}"
    );
}
