//! §5.2.2 regression: the steady-state MD force evaluation must perform
//! ZERO heap allocations. A counting global allocator wraps the system
//! allocator; after a few warm-up calls (buffer rotation lets capacities
//! migrate between workspace roles until they reach a fixed point) the
//! allocation counter must not move across repeated `compute_into` calls
//! on the same configuration.
//!
//! The whole measurement runs inside a dedicated single-thread rayon pool
//! so the thread-local formatter scratch is warmed on the same worker
//! thread that later serves the measured calls.

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::integrate::{run_md_resumable, Berendsen, MdOptions, MdProgress};
use deepmd_repro::md::{lattice, units, NeighborList, NlScratch, Potential, PotentialOutput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_dp_step_is_allocation_free() {
    let cfg = DpConfig::small(1, 4.5, 16);
    let mut rng = StdRng::seed_from_u64(31);
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
    sys.perturb(0.1, &mut rng);
    let mut pot = DeepPotential::new(model, PrecisionMode::Double);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    pool.install(|| {
        let nl = NeighborList::build(&sys, pot.cutoff());
        let mut out = PotentialOutput::zeros(sys.len());
        for mode in [
            PrecisionMode::Double,
            PrecisionMode::Mixed,
            PrecisionMode::HalfEmulated,
        ] {
            pot.set_mode(mode);
            // warm up: capacities rotate between workspace roles until
            // they reach their fixed point
            for _ in 0..6 {
                pot.compute_into(&sys, &nl, &mut out);
            }
            let before = allocs();
            for _ in 0..3 {
                pot.compute_into(&sys, &nl, &mut out);
            }
            let delta = allocs() - before;
            assert_eq!(
                delta, 0,
                "steady-state compute_into allocated {delta} times in {mode:?} mode"
            );
        }
        assert!(out.energy.is_finite());
    });
}

#[test]
fn alternating_precision_modes_are_allocation_free() {
    // Regression for the shared-trunk hazard: Mixed and HalfEmulated both
    // evaluate in f32, but the half path truncates the formatted
    // environment in place, so when the two modes shared one f32 workspace
    // every switch re-warmed it (capacity thrash = steady-state
    // allocations). With a dedicated half-precision trunk, cycling
    // Double -> Mixed -> HalfEmulated every call must stay at zero
    // allocations once all three trunks are warm.
    const MODES: [PrecisionMode; 3] = [
        PrecisionMode::Double,
        PrecisionMode::Mixed,
        PrecisionMode::HalfEmulated,
    ];
    let cfg = DpConfig::small(1, 4.5, 16);
    let mut rng = StdRng::seed_from_u64(17);
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let mut sys = lattice::fcc(3.615, [3, 3, 3], units::MASS_CU);
    sys.perturb(0.1, &mut rng);
    let mut pot = DeepPotential::new(model, PrecisionMode::Double);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    pool.install(|| {
        let nl = NeighborList::build(&sys, pot.cutoff());
        let mut out = PotentialOutput::zeros(sys.len());
        for _ in 0..6 {
            for mode in MODES {
                pot.set_mode(mode);
                pot.compute_into(&sys, &nl, &mut out);
            }
        }
        let before = allocs();
        for _ in 0..3 {
            for mode in MODES {
                pot.set_mode(mode);
                pot.compute_into(&sys, &nl, &mut out);
            }
        }
        let delta = allocs() - before;
        assert_eq!(
            delta, 0,
            "alternating precision modes allocated {delta} times at steady state"
        );
        assert!(out.energy.is_finite());
    });
}

#[test]
fn full_md_step_is_allocation_free_at_steady_state() {
    // The end-to-end version of the invariant: a whole `run_md_resumable`
    // step (kick-drift, thermostat, force eval, sampling) must not touch
    // the heap once every workspace reached its fixed point. Measured as
    // an equality — a 62-step run must allocate exactly as much as a
    // 12-step run from the same start state, so the per-call constants
    // (neighbor list, output buffer, thermo vec) cancel and any per-step
    // allocation shows up as a difference.
    let cfg = DpConfig::small(1, 4.5, 16);
    let mut rng = StdRng::seed_from_u64(11);
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    // [4,4,4] keeps cutoff+skin (6.0) under the minimum-image limit (7.23)
    let mut sys0 = lattice::fcc(3.615, [4, 4, 4], units::MASS_CU);
    sys0.init_velocities(300.0, &mut rng);
    let pot = DeepPotential::new(model, PrecisionMode::Double);
    let opts = MdOptions {
        dt: 1.0e-3,
        // generous skin: 62 warm-crystal steps displace atoms far less
        // than skin/2, so neither run rebuilds mid-run
        skin: 1.5,
        thermo_every: 1000,
        thermostat: Some(Berendsen {
            target_t: 300.0,
            tau: 0.1,
        }),
        ..MdOptions::default()
    };

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    pool.install(|| {
        // warm up: grows the potential's internal workspace to its fixed
        // point (the run-local buffers are per-call and cancel below)
        let mut warm = sys0.clone();
        run_md_resumable(&mut warm, &pot, &opts, 20, MdProgress::default(), |_| {}, None);

        let mut measure = |steps: usize| {
            let mut s = sys0.clone();
            let before = allocs();
            let run = run_md_resumable(&mut s, &pot, &opts, steps, MdProgress::default(), |_| {}, None);
            assert!(run.thermo.last().unwrap().total_energy().is_finite());
            allocs() - before
        };
        let short = measure(12);
        let long = measure(62);
        assert_eq!(
            short, long,
            "50 extra MD steps allocated {} extra times",
            long.saturating_sub(short)
        );
    });
}

#[test]
fn steady_state_neighbor_rebuild_is_allocation_free() {
    // The companion invariant for the rebuild step: `build_into` with a
    // warmed scratch must not touch the heap when the geometry is stable.
    let mut sys = lattice::fcc(3.615, [4, 4, 4], units::MASS_CU);
    let mut rng = StdRng::seed_from_u64(5);
    sys.perturb(0.05, &mut rng);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    pool.install(|| {
        let mut scratch = NlScratch::default();
        let mut nl = NeighborList::empty();
        for _ in 0..4 {
            nl.build_into(&sys, 6.0, &mut scratch);
        }
        let before = allocs();
        for _ in 0..3 {
            nl.build_into(&sys, 6.0, &mut scratch);
        }
        let delta = allocs() - before;
        assert_eq!(delta, 0, "steady-state build_into allocated {delta} times");
        assert!(nl.num_pairs() > 0);
    });
}
