//! Integration: the observability subsystem end-to-end through `app::run`.
//!
//! The obs state (enable flag, trace recorder, metrics sink) is process
//! global, so the trace and metrics checks run inside a single test —
//! cargo's parallel harness would otherwise race two runs on the shared
//! sink.

use deepmd_repro::app::{parse_config, run};
use deepmd_repro::core::{DpConfig, DpModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

#[test]
fn dp_deck_with_trace_and_metrics_produces_valid_artifacts() {
    let mut rng = StdRng::seed_from_u64(8);
    let model = DpModel::<f64>::new_random(DpConfig::small(1, 4.5, 16), &mut rng);
    let dir = std::env::temp_dir().join("dpmd-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, serde_json::to_string(&model.to_data()).unwrap()).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.jsonl");

    let deck = format!(
        r#"{{
        "system": {{"kind": "fcc", "a0": 3.615, "reps": [3,3,3], "mass": 63.546}},
        "potential": {{"kind": "deep_potential", "model": {model:?}, "mixed_precision": true}},
        "temperature": 100.0,
        "dt_fs": 1.0,
        "steps": 12,
        "thermo_every": 6,
        "trace_path": {trace:?},
        "metrics_path": {metrics:?},
        "seed": 9
    }}"#,
        model = model_path.to_str().unwrap(),
        trace = trace_path.to_str().unwrap(),
        metrics = metrics_path.to_str().unwrap()
    );
    let cfg = parse_config(&deck).unwrap();
    let summary = run(&cfg, |_| {}).unwrap();
    assert!(summary.thermo.last().unwrap().total_energy().is_finite());

    // ---- chrome trace: a loadable JSON array of complete events ----
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let events: Value = serde_json::from_str(&trace_text).expect("trace is valid JSON");
    let events = events.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty(), "trace recorded no events");
    for e in events.iter() {
        assert!(e["name"].is_string(), "event missing name: {e}");
        assert_eq!(e["ph"].as_str(), Some("X"), "event not a complete event: {e}");
        assert!(e["ts"].as_f64().is_some(), "event missing ts: {e}");
        assert!(e["dur"].as_f64().is_some(), "event missing dur: {e}");
        assert!(e["tid"].as_u64().is_some(), "event missing tid: {e}");
    }
    // the MD-loop phase taxonomy shows up
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    for expected in ["integrate", "force_eval", "environment", "embedding_gemm"] {
        assert!(names.contains(&expected), "no '{expected}' span in trace");
    }

    // ---- per-step metrics: §6.3 headline figures on every line ----
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let lines: Vec<Value> = metrics_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("metrics line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), 12, "one metrics line per step");
    for v in &lines {
        let tts = v["s_per_step_per_atom"].as_f64().expect("tts present");
        assert!(tts > 0.0 && tts.is_finite(), "bad s_per_step_per_atom {tts}");
        assert_eq!(v["n_atoms"].as_u64(), Some(108));
        assert!(v["gflops"].as_f64().is_some(), "gflops missing");
        assert!(v["flops"].as_u64().is_some(), "flops missing");
    }
    // a DP step does real GEMM work, so the flops counter must move
    assert!(
        lines.iter().any(|v| v["flops"].as_u64().unwrap_or(0) > 0),
        "no step recorded any FLOPs"
    );

    // a second run without obs keys leaves the subsystem disabled
    assert!(!deepmd_repro::obs::enabled());
}

// ---- the deck path through the dpmd binary (subprocess-isolated) -------

/// A faulted parallel deck with `--metrics` and `--prom-dump` must leave
/// (a) a flight-recorder post-mortem on the metrics stream covering the
/// steps before the kill, (b) roofline attribution events, and (c) a
/// Prometheus snapshot that both the library parser and `dpmd promcheck`
/// accept. Runs in a subprocess, so in-process obs state stays clean.
#[test]
fn deck_level_fault_run_dumps_flight_recorder_and_prometheus() {
    let dir = std::env::temp_dir().join("dpmd-obs-flight-prom");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("run.ckpt").display().to_string();
    let deck = format!(
        r#"{{
        "system": {{"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948}},
        "potential": {{"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0}},
        "temperature": 40.0,
        "dt_fs": 2.0,
        "steps": 60,
        "thermo_every": 20,
        "seed": 7,
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "checkpoint_shards": true,
        "fault_kill_rank": 1,
        "fault_kill_step": 33
    }}"#
    );
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();
    let metrics = dir.join("metrics.jsonl");
    let prom = dir.join("prom.txt");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dpmd"))
        .arg(&deck_path)
        .args([
            "--metrics",
            metrics.to_str().unwrap(),
            "--prom-dump",
            prom.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dpmd");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );

    // flight-recorder post-mortem rode the metrics stream
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let dump = jsonl
        .lines()
        .find(|l| {
            l.contains("\"event\":\"flight_recorder\"") && l.contains("\"reason\":\"rank_death\"")
        })
        .unwrap_or_else(|| panic!("no flight dump in metrics:\n{jsonl}"));
    assert!(dump.contains("\"rank\":1,"), "{dump}");
    assert!(
        dump.matches("\"step\":").count() >= 16,
        "flight window too short: {dump}"
    );

    // roofline attribution rides the same stream
    assert!(jsonl.contains("\"event\":\"roofline\""), "{jsonl}");
    assert!(jsonl.contains("\"phase\":\"compute\""), "{jsonl}");

    // the Prometheus snapshot parses and carries the fault + roofline story
    let text = std::fs::read_to_string(&prom).unwrap();
    let exp = deepmd_repro::obs::prom::parse(&text)
        .unwrap_or_else(|e| panic!("prom dump rejected: {e}\n{text}"));
    for (name, at_least) in [
        ("dpmd_fault_detected", 1.0),
        ("dpmd_flight_dumps", 1.0),
        ("dpmd_recovery_local_success", 1.0),
    ] {
        let s = exp
            .sample(name)
            .unwrap_or_else(|| panic!("missing {name} in prom dump:\n{text}"));
        assert!(s.value >= at_least, "{name} = {}", s.value);
    }
    let roof = exp.samples_named("dpmd_roofline_achieved_gflops");
    assert!(
        roof.iter().any(|s| s.label("phase") == Some("compute")),
        "no compute roofline gauge in prom dump:\n{text}"
    );
    assert!(
        exp.has_prefix("dpmd_step_wall_ns"),
        "step-wall histogram family missing:\n{text}"
    );

    // `dpmd promcheck` accepts the same file
    let chk = std::process::Command::new(env!("CARGO_BIN_EXE_dpmd"))
        .args(["promcheck", prom.to_str().unwrap()])
        .output()
        .expect("spawn dpmd promcheck");
    assert!(
        chk.status.success(),
        "promcheck rejected the dump:\n{}{}",
        String::from_utf8_lossy(&chk.stdout),
        String::from_utf8_lossy(&chk.stderr)
    );
}
