//! Integration: the observability subsystem end-to-end through `app::run`.
//!
//! The obs state (enable flag, trace recorder, metrics sink) is process
//! global, so the trace and metrics checks run inside a single test —
//! cargo's parallel harness would otherwise race two runs on the shared
//! sink.

use deepmd_repro::app::{parse_config, run};
use deepmd_repro::core::{DpConfig, DpModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

#[test]
fn dp_deck_with_trace_and_metrics_produces_valid_artifacts() {
    let mut rng = StdRng::seed_from_u64(8);
    let model = DpModel::<f64>::new_random(DpConfig::small(1, 4.5, 16), &mut rng);
    let dir = std::env::temp_dir().join("dpmd-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, serde_json::to_string(&model.to_data()).unwrap()).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.jsonl");

    let deck = format!(
        r#"{{
        "system": {{"kind": "fcc", "a0": 3.615, "reps": [3,3,3], "mass": 63.546}},
        "potential": {{"kind": "deep_potential", "model": {model:?}, "mixed_precision": true}},
        "temperature": 100.0,
        "dt_fs": 1.0,
        "steps": 12,
        "thermo_every": 6,
        "trace_path": {trace:?},
        "metrics_path": {metrics:?},
        "seed": 9
    }}"#,
        model = model_path.to_str().unwrap(),
        trace = trace_path.to_str().unwrap(),
        metrics = metrics_path.to_str().unwrap()
    );
    let cfg = parse_config(&deck).unwrap();
    let summary = run(&cfg, |_| {}).unwrap();
    assert!(summary.thermo.last().unwrap().total_energy().is_finite());

    // ---- chrome trace: a loadable JSON array of complete events ----
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let events: Value = serde_json::from_str(&trace_text).expect("trace is valid JSON");
    let events = events.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty(), "trace recorded no events");
    for e in events.iter() {
        assert!(e["name"].is_string(), "event missing name: {e}");
        assert_eq!(e["ph"].as_str(), Some("X"), "event not a complete event: {e}");
        assert!(e["ts"].as_f64().is_some(), "event missing ts: {e}");
        assert!(e["dur"].as_f64().is_some(), "event missing dur: {e}");
        assert!(e["tid"].as_u64().is_some(), "event missing tid: {e}");
    }
    // the MD-loop phase taxonomy shows up
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    for expected in ["integrate", "force_eval", "environment", "embedding_gemm"] {
        assert!(names.contains(&expected), "no '{expected}' span in trace");
    }

    // ---- per-step metrics: §6.3 headline figures on every line ----
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let lines: Vec<Value> = metrics_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("metrics line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), 12, "one metrics line per step");
    for v in &lines {
        let tts = v["s_per_step_per_atom"].as_f64().expect("tts present");
        assert!(tts > 0.0 && tts.is_finite(), "bad s_per_step_per_atom {tts}");
        assert_eq!(v["n_atoms"].as_u64(), Some(108));
        assert!(v["gflops"].as_f64().is_some(), "gflops missing");
        assert!(v["flops"].as_u64().is_some(), "flops missing");
    }
    // a DP step does real GEMM work, so the flops counter must move
    assert!(
        lines.iter().any(|v| v["flops"].as_u64().unwrap_or(0) > 0),
        "no step recorded any FLOPs"
    );

    // a second run without obs keys leaves the subsystem disabled
    assert!(!deepmd_repro::obs::enabled());
}
