//! End-to-end integration: train a Deep Potential against a reference
//! potential, verify accuracy on held-out data, and drive stable MD with
//! the trained network — the full workflow the paper's system exists for.

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::integrate::{run_md, MdOptions};
use deepmd_repro::md::potential::pair::LennardJones;
use deepmd_repro::md::{lattice, NeighborList, Potential};
use deepmd_repro::train::dataset::perturbed_frames;
use deepmd_repro::train::trainer::rmse_on_frames;
use deepmd_repro::train::{LossWeights, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_lj_model(steps: usize, seed: u64) -> (DpModel<f64>, LennardJones) {
    let mut rng = StdRng::seed_from_u64(seed);
    let reference = LennardJones::new(0.0104, 3.405, 5.0);
    let base = lattice::fcc(5.26, [2, 2, 2], 39.948);
    let frames = perturbed_frames(&base, &reference, 8, 0.3, &mut rng);
    let cfg = DpConfig {
        rcut: 5.0,
        rcut_smth: 1.5,
        sel: vec![24],
        embedding: vec![8, 16],
        fitting: vec![32, 32],
        axis_neurons: 4,
    };
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let mut trainer = Trainer::new(model, &frames, 0.02, LossWeights::default());
    trainer.run(steps);
    (trainer.model, reference)
}

#[test]
fn trained_model_generalizes_to_held_out_frames() {
    let (model, reference) = train_lj_model(120, 11);
    let mut rng = StdRng::seed_from_u64(99);
    let base = lattice::fcc(5.26, [2, 2, 2], 39.948);
    let held_out = perturbed_frames(&base, &reference, 4, 0.25, &mut rng);
    let rmse = rmse_on_frames(&model, &held_out);

    // scale reference: thermal force magnitude in this ensemble
    let mut f2 = 0.0;
    let mut n = 0usize;
    for f in &held_out {
        for row in &f.forces {
            for k in 0..3 {
                f2 += row[k] * row[k];
                n += 1;
            }
        }
    }
    let f_scale = (f2 / n as f64).sqrt();
    assert!(
        rmse.force < 0.5 * f_scale,
        "force RMSE {:.3e} not below half the force scale {:.3e}",
        rmse.force,
        f_scale
    );
    assert!(
        rmse.energy_per_atom < 5e-3,
        "energy RMSE {:.3e} eV/atom too large",
        rmse.energy_per_atom
    );
}

#[test]
fn dp_driven_nve_conserves_energy() {
    let (model, _) = train_lj_model(60, 12);
    let dp = DeepPotential::new(model, PrecisionMode::Double);
    let mut sys = lattice::fcc(5.26, [3, 3, 3], 39.948);
    let mut rng = StdRng::seed_from_u64(13);
    sys.init_velocities(40.0, &mut rng);
    let opts = MdOptions {
        dt: 2.0e-3,
        skin: 1.5,
        thermo_every: 20,
        ..MdOptions::default()
    };
    let run = run_md(&mut sys, &dp, &opts, 120, |_| {});
    let drift = (run.thermo.last().unwrap().total_energy()
        - run.thermo.first().unwrap().total_energy())
    .abs()
        / sys.len() as f64;
    assert!(drift < 5e-5, "NVE drift with DP forces: {drift} eV/atom");
}

#[test]
fn dp_energy_is_extensive() {
    // E(2x system) ≈ 2 E(system) for a periodic crystal — the per-atom
    // decomposition of the descriptor guarantees extensivity.
    let (model, _) = train_lj_model(40, 14);
    let dp = DeepPotential::new(model, PrecisionMode::Double);
    let small = lattice::fcc(5.26, [3, 3, 3], 39.948);
    let big = lattice::fcc(5.26, [3, 3, 6], 39.948);
    let nl_s = NeighborList::build(&small, dp.cutoff());
    let nl_b = NeighborList::build(&big, dp.cutoff());
    let e_small = dp.compute(&small, &nl_s).energy;
    let e_big = dp.compute(&big, &nl_b).energy;
    assert!(
        (e_big - 2.0 * e_small).abs() < 1e-8 * e_small.abs().max(1.0),
        "not extensive: {e_small} vs {e_big}"
    );
}
