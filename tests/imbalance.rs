//! Per-rank observability end-to-end: the parallel driver must produce
//! one merged chrome-trace with a `tid` lane per rank, per-rank latency
//! histogram rows and imbalance heartbeats in the metrics JSONL, and a
//! populated `ImbalanceReport` on the run summary.
//!
//! Obs state (enable flag, trace recorder, metrics sink) is process-global,
//! so the driver-level test holds all its in-process checks inside a single
//! test fn; the deck-level test runs the `dpmd` binary in a subprocess and
//! never touches in-process obs state, so the two can coexist. The offline
//! check script runs only `driver_level` (the deck path needs real
//! serde_json at runtime).

use deepmd_repro::md::integrate::MdOptions;
use deepmd_repro::md::potential::pair::LennardJones;
use deepmd_repro::md::rng::CounterRng;
use deepmd_repro::md::{lattice, Potential, System};
use deepmd_repro::parallel::{run_parallel_md, ParallelOptions};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn argon() -> System {
    let mut sys = lattice::fcc(5.26, [3, 3, 3], 39.948);
    let mut rng = CounterRng::new(7);
    sys.init_velocities(30.0, &mut rng);
    sys
}

fn lj() -> Arc<dyn Potential> {
    Arc::new(LennardJones::new(0.0104, 3.405, 5.0))
}

/// Drives `run_parallel_md` directly with tracing, metrics, and the
/// heartbeat enabled, then checks every per-rank artifact in one pass.
/// Runs offline (no serde_json at runtime: assertions are string-level).
#[test]
fn driver_level_histograms_heartbeat_and_rank_lanes() {
    let dir = test_dir("dpobs-driver-level");
    let metrics_path = dir.join("driver.jsonl");
    dp_obs::metrics::install(metrics_path.to_str().unwrap()).unwrap();
    dp_obs::trace::start_recording(dp_obs::trace::DEFAULT_CAPACITY);
    dp_obs::enable();

    let opts = ParallelOptions {
        md: MdOptions {
            dt: 2.0e-3,
            skin: 1.0,
            thermo_every: 10,
            ..MdOptions::default()
        },
        comm_deadline: Duration::from_secs(5),
        report_every: 5,
        ..ParallelOptions::default()
    };
    let run = run_parallel_md(&argon(), lj(), [2, 1, 1], &opts, 20).unwrap();

    dp_obs::disable();
    let events = dp_obs::trace::stop_recording();
    dp_obs::metrics::uninstall().unwrap().unwrap();

    // -- run summary: the analyzer's report is populated and coherent --
    let rep = &run.imbalance;
    assert_eq!(rep.n_ranks, 2);
    assert_eq!(rep.steps, 20);
    for name in ["compute", "comm", "wait"] {
        let p = rep
            .phase(name)
            .unwrap_or_else(|| panic!("missing phase {name}"));
        assert!(
            p.min_s <= p.mean_s && p.mean_s <= p.max_s,
            "{name}: min {} mean {} max {} out of order",
            p.min_s,
            p.mean_s,
            p.max_s
        );
        assert!(p.min_s >= 0.0 && p.share >= 0.0);
    }
    let compute = rep.phase("compute").unwrap();
    assert!(compute.mean_s > 0.0, "no compute time recorded");
    assert!(
        rep.imbalance >= 1.0,
        "max/mean busy below 1: {}",
        rep.imbalance
    );
    let shares: f64 = rep.phases.iter().map(|p| p.share).sum();
    assert!((shares - 1.0).abs() < 1e-9, "phase shares sum to {shares}");
    let table = rep.to_table();
    assert!(table.contains("rank imbalance"), "{table}");

    // -- merged chrome trace: each rank owns its own tid lane --
    let rank_tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.tid < dp_obs::trace::UNSCOPED_TID_BASE)
        .map(|e| e.tid)
        .collect();
    assert_eq!(
        rank_tids.into_iter().collect::<Vec<_>>(),
        vec![0, 1],
        "expected exactly rank lanes 0 and 1 in the merged trace"
    );
    assert!(
        events.iter().any(|e| e.name == "force_eval" && e.tid == 1),
        "rank 1's lane is missing compute spans"
    );

    // -- metrics JSONL: per-rank histogram rows + heartbeat events --
    let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
    for needle in [
        "\"event\":\"hist\"",
        "\"name\":\"step_wall_ns\"",
        "\"name\":\"comm.send_ns\"",
        "\"rank\":0,",
        "\"rank\":1,",
        "\"p50\":",
        "\"p95\":",
        "\"event\":\"imbalance_heartbeat\"",
        "\"step\":",
    ] {
        assert!(jsonl.contains(needle), "missing {needle} in:\n{jsonl}");
    }
    // heartbeats fire on the report_every stride and carry phase rows
    let heartbeats = jsonl
        .lines()
        .filter(|l| l.contains("\"event\":\"imbalance_heartbeat\""))
        .count();
    assert!(
        heartbeats >= 2,
        "expected >=2 heartbeats over 20 steps / 5, got {heartbeats}"
    );
}

// ---- the full deck path through the dpmd binary (CI only) --------------

fn dpmd(deck_path: &std::path::Path, extra_args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_dpmd"))
        .arg(deck_path)
        .args(extra_args)
        .output()
        .expect("failed to spawn dpmd")
}

/// A parallel LJ deck run through `dpmd --trace --metrics
/// --imbalance-report` must yield a schema-valid merged chrome trace, a
/// metrics stream carrying hist/heartbeat/imbalance events, and the
/// breakdown table on stdout. Subprocess-isolated: obs state stays clean.
#[test]
fn deck_level_merged_trace_and_imbalance_json() {
    use serde_json::Value;

    let dir = test_dir("dpobs-deck-level");
    let deck = r#"{
        "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
        "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
        "temperature": 40.0,
        "dt_fs": 2.0,
        "steps": 30,
        "thermo_every": 10,
        "seed": 7,
        "grid": [2,1,1],
        "report_every": 10
    }"#;
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.jsonl");

    let out = dpmd(
        &deck_path,
        &[
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--imbalance-report",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("rank imbalance"),
        "--imbalance-report table missing from stdout:\n{stdout}"
    );

    // -- chrome trace: valid JSON array, complete events, rank lanes --
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Value> = serde_json::from_str(&trace_text).unwrap();
    assert!(!events.is_empty(), "empty trace");
    let mut rank_tids = std::collections::BTreeSet::new();
    for e in &events {
        assert!(e.get("name").and_then(Value::as_str).is_some(), "{e}");
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"), "{e}");
        assert!(e.get("ts").and_then(Value::as_f64).is_some(), "{e}");
        assert!(e.get("dur").and_then(Value::as_f64).is_some(), "{e}");
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
        if tid < 1000 {
            rank_tids.insert(tid);
        }
    }
    assert_eq!(
        rank_tids.into_iter().collect::<Vec<_>>(),
        vec![0, 1],
        "merged trace must carry one lane per rank"
    );

    // -- metrics JSONL: hist rows per rank, heartbeat, imbalance summary --
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    let mut hist_ranks = std::collections::BTreeSet::new();
    let mut saw_heartbeat = false;
    let mut imbalance: Option<Value> = None;
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        let v: Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        match v.get("event").and_then(Value::as_str) {
            Some("hist") => {
                for key in ["name", "rank", "count", "mean", "p50", "p95", "min", "max"] {
                    assert!(v.get(key).is_some(), "hist row missing {key}: {line}");
                }
                hist_ranks.insert(v["rank"].as_u64().unwrap());
            }
            Some("imbalance_heartbeat") => {
                saw_heartbeat = true;
                assert!(v.get("step").and_then(Value::as_u64).is_some(), "{line}");
            }
            Some("imbalance") => imbalance = Some(v),
            _ => {}
        }
    }
    assert_eq!(
        hist_ranks.into_iter().collect::<Vec<_>>(),
        vec![0, 1],
        "histogram rows must cover both ranks"
    );
    assert!(saw_heartbeat, "no imbalance_heartbeat event in:\n{jsonl}");

    let imb = imbalance.expect("no end-of-run imbalance event");
    assert_eq!(imb["n_ranks"].as_u64(), Some(2));
    assert_eq!(imb["steps"].as_u64(), Some(30));
    assert!(imb["imbalance"].as_f64().unwrap() >= 1.0);
    let phases = imb["phases"].as_array().unwrap();
    let names: Vec<&str> = phases.iter().filter_map(|p| p["phase"].as_str()).collect();
    for want in ["compute", "comm", "wait"] {
        assert!(names.contains(&want), "missing phase {want} in {names:?}");
    }
    for p in phases {
        for key in ["min_s", "mean_s", "max_s", "imbalance", "share"] {
            assert!(p.get(key).and_then(Value::as_f64).is_some(), "{p}");
        }
    }
    // fcc decks map to the copper perf model: the compute row carries the
    // modeled-GFLOPS column even though LJ itself counts no flops
    let compute = phases.iter().find(|p| p["phase"] == "compute").unwrap();
    assert!(
        compute
            .get("modeled_gflops")
            .and_then(Value::as_f64)
            .unwrap()
            > 0.0,
        "compute row missing modeled_gflops: {compute}"
    );
}
