//! Integration: the `dpmd` application layer runs complete simulations
//! from JSON input decks (classical and Deep Potential drivers).

use deepmd_repro::app::{parse_config, run};
use deepmd_repro::core::{DpConfig, DpModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lj_deck_runs_and_conserves_energy() {
    let deck = r#"{
        "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
        "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
        "temperature": 40.0,
        "dt_fs": 2.0,
        "steps": 100,
        "thermo_every": 20,
        "seed": 3
    }"#;
    let cfg = parse_config(deck).unwrap();
    let summary = run(&cfg, |_| {}).unwrap();
    assert_eq!(summary.potential_name, "lennard-jones");
    let e0 = summary.thermo.first().unwrap().total_energy();
    let e1 = summary.thermo.last().unwrap().total_energy();
    let drift = (e1 - e0).abs() / summary.final_system.len() as f64;
    assert!(drift < 5e-5, "NVE drift {drift}");
}

#[test]
fn water_deck_with_thermostat_holds_temperature() {
    let deck = r#"{
        "system": {"kind": "water", "mols_per_axis": [4,4,4], "spacing": 3.104},
        "potential": {"kind": "water_reference", "rcut": 4.5},
        "temperature": 330.0,
        "thermostat": "berendsen",
        "dt_fs": 0.5,
        "steps": 120,
        "thermo_every": 40,
        "seed": 4
    }"#;
    let cfg = parse_config(deck).unwrap();
    let summary = run(&cfg, |_| {}).unwrap();
    let t = summary.thermo.last().unwrap().temperature;
    assert!((230.0..430.0).contains(&t), "T = {t}");
}

#[test]
fn dp_model_deck_roundtrips_through_disk() {
    // save a random model to disk, then drive MD with it via the deck
    let mut rng = StdRng::seed_from_u64(5);
    let model = DpModel::<f64>::new_random(DpConfig::small(1, 4.5, 16), &mut rng);
    let dir = std::env::temp_dir().join("dpmd-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        serde_json::to_string(&model.to_data()).unwrap(),
    )
    .unwrap();
    let traj_path = dir.join("run.xyz");

    let deck = format!(
        r#"{{
        "system": {{"kind": "fcc", "a0": 3.615, "reps": [3,3,3], "mass": 63.546}},
        "potential": {{"kind": "deep_potential", "model": {model:?}, "mixed_precision": true}},
        "temperature": 100.0,
        "dt_fs": 1.0,
        "steps": 30,
        "thermo_every": 10,
        "trajectory": {traj:?},
        "seed": 6
    }}"#,
        model = model_path.to_str().unwrap(),
        traj = traj_path.to_str().unwrap()
    );
    let cfg = parse_config(&deck).unwrap();
    let summary = run(&cfg, |_| {}).unwrap();
    assert!(summary.potential_name.contains("mixed"));
    assert!(summary.thermo.last().unwrap().total_energy().is_finite());
    // trajectory written and parseable
    let text = std::fs::read_to_string(&traj_path).unwrap();
    assert!(text.starts_with("108\n"), "bad trajectory header");
}

#[test]
fn oversized_cutoff_is_a_clean_error() {
    let deck = r#"{
        "system": {"kind": "fcc", "a0": 3.615, "reps": [2,2,2], "mass": 63.546},
        "potential": {"kind": "sutton_chen_cu", "short": false},
        "temperature": 100.0,
        "dt_fs": 1.0,
        "steps": 10
    }"#;
    let cfg = parse_config(deck).unwrap();
    let err = match run(&cfg, |_| {}) {
        Err(e) => e,
        Ok(_) => panic!("expected an error"),
    };
    assert_eq!(err.exit_code(), 2, "cutoff errors are deck errors: {err}");
    assert!(
        err.to_string().contains("minimum-image"),
        "unexpected error: {err}"
    );
}

#[test]
fn bad_deck_is_a_clean_error() {
    assert!(parse_config("{\"nope\": 1}").is_err());
    assert!(parse_config("not json").is_err());
    // A typo'd key must be rejected even when the rest of the deck is valid.
    let err = parse_config(
        r#"{
        "system": {"kind": "fcc", "a0": 5.26, "reps": [2,2,2], "mass": 39.948},
        "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 6.0},
        "temperature": 30.0,
        "dt_fs": 2.0,
        "steps": 10,
        "checkpont_every": 5
    }"#,
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 2);
    assert!(
        err.to_string().contains("checkpont_every"),
        "unexpected error: {err}"
    );
}
