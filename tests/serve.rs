//! End-to-end tests for `dpmd serve`: a real daemon subprocess on an
//! ephemeral loopback port, driven over real sockets.
//!
//! The core acceptance test proves the §5.2.1 cross-request batching
//! contract from the outside: N concurrent `/v1/eval` requests against
//! one model are served through at least one coalesced batch (the
//! `serve.eval.coalesced` counter moves), and every response body is
//! byte-identical to the one sequential evaluation produces — which,
//! with shortest-round-trip float printing, is bit-identity of every
//! energy and force component.
//!
//! Tests prefixed `job_` submit decks, which the daemon parses with
//! serde_json; the offline harness (tools/offline_check.sh) runs this
//! binary with `--skip job_` because its serde stub cannot parse JSON at
//! runtime. The eval/metrics/shutdown tests run everywhere.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the daemon on drop unless the test shut it down cleanly.
struct Daemon {
    child: Option<Child>,
    addr: String,
    _dir: std::path::PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut c) = self.child.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

impl Daemon {
    /// Start `dpmd serve` on an ephemeral port and wait until it
    /// publishes its address.
    fn start(name: &str, extra: &[&str]) -> Daemon {
        let dir = std::env::temp_dir().join(format!("dpmd-serve-e2e-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let mut args = vec![
            "serve".to_string(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--addr-file".into(),
            addr_file.display().to_string(),
            "--model".into(),
            "default=synthetic:1".into(),
            "--state-dir".into(),
            dir.join("state").display().to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let child = Command::new(env!("CARGO_BIN_EXE_dpmd"))
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn dpmd serve");

        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(Instant::now() < deadline, "daemon never published its address");
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon {
            child: Some(child),
            addr,
            _dir: dir,
        }
    }

    /// One HTTP request; returns (status, body).
    fn http(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(&self.addr).expect("connect to daemon");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        s.write_all(body.as_bytes()).unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let (head, rest) = raw.split_once("\r\n\r\n").expect("full response");
        let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
        (status, rest.to_string())
    }

    /// Drain + shutdown; asserts the daemon exits 0.
    fn shutdown(mut self) {
        let (status, body) = self.http("POST", "/v1/admin/shutdown", "");
        assert_eq!(status, 200, "{body}");
        let mut child = self.child.take().unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match child.try_wait().unwrap() {
                Some(code) => {
                    assert_eq!(code.code(), Some(0), "daemon exited {code:?}");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "daemon never exited after shutdown");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
}

/// An eval request body for `n` atoms on a line in a roomy box.
fn eval_body(n: usize) -> String {
    let positions: Vec<String> = (0..n)
        .map(|i| format!("[{}.0, 5.0, 5.0]", 1 + 2 * i))
        .collect();
    format!(
        "{{\"cell\": [24.0, 12.0, 12.0], \"positions\": [{}], \"per_atom\": true}}",
        positions.join(", ")
    )
}

/// Pull a numeric counter out of the /metrics JSON (string matching keeps
/// this test independent of any JSON parser). Counters are interned on
/// first use, so a name that has not fired yet is simply absent — that
/// reads as 0.
fn metric_counter(metrics: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let Some(at) = metrics.find(&key) else {
        return 0;
    };
    metrics[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn concurrent_evals_coalesce_and_match_sequential_bit_for_bit() {
    // A generous linger so the concurrent burst reliably lands in one
    // batch even on a loaded CI machine.
    let d = Daemon::start("coalesce", &["--batch-linger-ms", "150", "--max-batch", "16"]);
    let sizes: Vec<usize> = (2..10).collect();

    // Sequential pass: one request at a time. Each runs as its own batch.
    let sequential: Vec<String> = sizes
        .iter()
        .map(|&n| {
            let (status, body) = d.http("POST", "/v1/eval", &eval_body(n));
            assert_eq!(status, 200, "{body}");
            body
        })
        .collect();

    let (_, metrics) = d.http("GET", "/metrics", "");
    let batches_before = metric_counter(&metrics, "serve.eval.batches");
    let coalesced_before = metric_counter(&metrics, "serve.eval.coalesced");

    // Concurrent pass: all N at once against the same model.
    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&n| {
                let d = &d;
                scope.spawn(move || {
                    let (status, body) = d.http("POST", "/v1/eval", &eval_body(n));
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Bit-identity: batched responses are byte-equal to sequential ones.
    assert_eq!(concurrent, sequential);
    for (body, n) in sequential.iter().zip(&sizes) {
        assert!(
            body.contains(&format!("\"natoms\":{n}")),
            "response for {n} atoms: {body}"
        );
        assert!(body.contains("\"per_atom_energy\":["), "{body}");
    }

    // The burst was actually coalesced: at least one multi-request batch,
    // and strictly fewer batches than requests.
    let (_, metrics) = d.http("GET", "/metrics", "");
    let batches = metric_counter(&metrics, "serve.eval.batches") - batches_before;
    let coalesced = metric_counter(&metrics, "serve.eval.coalesced") - coalesced_before;
    assert!(coalesced >= 1, "no coalesced batch: {metrics}");
    assert!(
        (batches as usize) < sizes.len(),
        "{batches} batches for {} concurrent requests — nothing coalesced",
        sizes.len()
    );

    // Latency histograms from dp_obs::hist are exposed with quantiles.
    let at = metrics
        .find("\"serve.http.latency_us\":")
        .expect("request latency histogram in /metrics");
    let hist = &metrics[at..at + 200.min(metrics.len() - at)];
    assert!(hist.contains("\"p50\":"), "{hist}");
    assert!(hist.contains("\"p95\":"), "{hist}");

    d.shutdown();
}

#[test]
fn eval_errors_are_typed_and_do_not_kill_the_daemon() {
    let d = Daemon::start("errors", &[]);

    let (status, body) = d.http("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"ok\":true}");

    // Unknown model: 404.
    let (status, _) = d.http(
        "POST",
        "/v1/eval",
        "{\"model\": \"nope\", \"cell\": [20,12,12], \"positions\": [[1,1,1]]}",
    );
    assert_eq!(status, 404);

    // Cutoff does not fit the cell: 400.
    let (status, body) = d.http(
        "POST",
        "/v1/eval",
        "{\"cell\": [4,4,4], \"positions\": [[1,1,1]]}",
    );
    assert_eq!(status, 400);
    assert!(body.contains("minimum-image"), "{body}");

    // A deadline on an idle daemon always admits: the queue is empty, so
    // the only wait is the bounded linger.
    let (status, body) = d.http(
        "POST",
        "/v1/eval",
        "{\"cell\": [20,12,12], \"positions\": [[1,1,1]], \"deadline_ms\": 1}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"energy\":"), "{body}");

    // A non-positive deadline is a request error.
    let (status, body) = d.http(
        "POST",
        "/v1/eval",
        "{\"cell\": [20,12,12], \"positions\": [[1,1,1]], \"deadline_ms\": 0}",
    );
    assert_eq!(status, 400);
    assert!(body.contains("deadline_ms"), "{body}");

    // Malformed JSON: 400. Unknown endpoint: 404. Wrong method: 405.
    assert_eq!(d.http("POST", "/v1/eval", "{oops").0, 400);
    assert_eq!(d.http("GET", "/v2/nothing", "").0, 404);
    assert_eq!(d.http("DELETE", "/v1/eval", "").0, 405);

    // The daemon is still healthy after all that.
    let (status, _) = d.http("GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, body) = d.http("GET", "/v1/models", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"default\""), "{body}");

    d.shutdown();
}

#[test]
fn prometheus_scrape_round_trips_with_ensemble_and_roofline_series() {
    let d = Daemon::start("prom", &[]);

    // Drive one eval so the serve counters and latency histograms move.
    let (status, body) = d.http("POST", "/v1/eval", &eval_body(3));
    assert_eq!(status, 200, "{body}");

    let (status, text) = d.http("GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200, "{text}");

    // The scrape must survive the strict text-format parser — name
    // grammar, label escaping, histogram bucket monotonicity and
    // +Inf/_count agreement are all validated by parse().
    let exp = deepmd_repro::obs::prom::parse(&text)
        .unwrap_or_else(|e| panic!("scrape rejected by parser: {e}\n{text}"));
    assert!(!exp.samples.is_empty());

    // Ensemble series are pre-registered at daemon start, so they are
    // scrape-able (as zeros) even before any replica work runs.
    for name in [
        "dpmd_replica_exchange_attempts",
        "dpmd_replica_exchange_accepted",
    ] {
        assert!(exp.sample(name).is_some(), "missing {name} in scrape:\n{text}");
    }
    assert!(
        exp.has_prefix("dpmd_replica_batch_occupancy"),
        "missing batch-occupancy histogram family:\n{text}"
    );

    // Roofline attribution gauges carry a phase label.
    let roof = exp.samples_named("dpmd_roofline_achieved_gflops");
    assert!(!roof.is_empty(), "missing roofline gauges:\n{text}");
    assert!(
        roof.iter().any(|s| s.label("phase") == Some("compute")),
        "no phase=\"compute\" roofline series:\n{text}"
    );

    // Serve-layer series from the same scrape: the request counter moved
    // and the latency histogram has a consistent family.
    let evals = exp
        .sample("dpmd_serve_eval_requests")
        .expect("serve.eval.requests counter");
    assert!(evals.value >= 1.0, "{}", evals.value);
    assert!(exp.has_prefix("dpmd_serve_http_latency_us"), "{text}");

    // The JSON endpoint still answers alongside the prometheus one, with
    // the ensemble block present.
    let (status, json) = d.http("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(json.contains("\"ensemble\":"), "{json}");

    d.shutdown();
}

/// Minimal fast deck for job tests (serial LJ, a few hundred steps).
fn lj_deck() -> &'static str {
    r#"{
        "system": {"kind": "fcc", "a0": 5.26, "reps": [3, 3, 3], "mass": 39.948},
        "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
        "temperature": 40.0,
        "dt_fs": 2.0,
        "steps": 40,
        "thermo_every": 20,
        "seed": 7
    }"#
}

fn poll_job(d: &Daemon, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = d.http("GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"done\"") || body.contains("\"state\":\"failed\"") {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never settled: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn job_lifecycle_submit_poll_result() {
    let d = Daemon::start("jobs", &[]);

    // Bad deck: typed 400 at submission, not a failed job later.
    let (status, body) = d.http("POST", "/v1/jobs", "{\"not\": \"a deck\"}");
    assert_eq!(status, 400, "{body}");

    let (status, body) = d.http("POST", "/v1/jobs", lj_deck());
    assert_eq!(status, 202, "{body}");
    let id_at = body.find("\"id\":\"").expect("job id") + 6;
    let id: String = body[id_at..].chars().take_while(|c| *c != '"').collect();

    let settled = poll_job(&d, &id);
    assert!(settled.contains("\"state\":\"done\""), "{settled}");
    assert!(settled.contains("\"steps\":40"), "{settled}");
    assert!(settled.contains("\"potential\":\"lennard-jones\""), "{settled}");
    assert!(settled.contains("\"final_temperature\":"), "{settled}");

    // The job shows up in the listing and in the metrics counts.
    let (_, list) = d.http("GET", "/v1/jobs", "");
    assert!(list.contains(&format!("\"id\":\"{id}\"")), "{list}");
    let (_, metrics) = d.http("GET", "/metrics", "");
    assert!(metric_counter(&metrics, "serve.jobs.completed") >= 1, "{metrics}");
    assert!(metric_counter(&metrics, "serve.jobs.submitted") >= 1, "{metrics}");

    // Unknown job id: 404.
    let (status, _) = d.http("GET", "/v1/jobs/job-999", "");
    assert_eq!(status, 404);

    d.shutdown();
}

#[test]
fn job_failures_carry_the_cli_error_class() {
    let d = Daemon::start("jobfail", &[]);

    // A deck that parses but cannot run: LJ cutoff exceeding the
    // minimum-image limit of a tiny box is the CLI's exit-2 deck error.
    let deck = r#"{
        "system": {"kind": "fcc", "a0": 3.0, "reps": [1, 1, 1], "mass": 39.948},
        "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
        "temperature": 40.0,
        "dt_fs": 2.0,
        "steps": 10
    }"#;
    let (status, body) = d.http("POST", "/v1/jobs", deck);
    assert_eq!(status, 202, "{body}");
    let id_at = body.find("\"id\":\"").expect("job id") + 6;
    let id: String = body[id_at..].chars().take_while(|c| *c != '"').collect();

    let settled = poll_job(&d, &id);
    assert!(settled.contains("\"state\":\"failed\""), "{settled}");
    assert!(settled.contains("\"class\":\"deck\""), "{settled}");
    assert!(settled.contains("minimum-image"), "{settled}");

    d.shutdown();
}
