//! Integration: precision modes (§5.2.3) and the physical invariances the
//! descriptor construction must guarantee.

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::{lattice, Cell, NeighborList, Potential, System};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (DpModel<f64>, System) {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = DpConfig::small(1, 4.5, 16);
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let mut sys = lattice::fcc(3.615, [3, 3, 3], 63.546);
    sys.perturb(0.12, &mut rng);
    (model, sys)
}

#[test]
fn precision_ladder_orders_deviations() {
    // double is the reference; mixed deviates a little; fp16 much more.
    let (model, sys) = setup();
    let mut dp = DeepPotential::new(model, PrecisionMode::Double);
    let nl = NeighborList::build(&sys, dp.cutoff());
    let d = dp.compute(&sys, &nl);
    dp.set_mode(PrecisionMode::Mixed);
    let m = dp.compute(&sys, &nl);
    dp.set_mode(PrecisionMode::HalfEmulated);
    let h = dp.compute(&sys, &nl);

    let dev = |o: &deepmd_repro::md::PotentialOutput| {
        let mut worst = 0.0f64;
        for (a, b) in d.forces.iter().zip(&o.forces) {
            for k in 0..3 {
                worst = worst.max((a[k] - b[k]).abs());
            }
        }
        worst
    };
    let dev_m = dev(&m);
    let dev_h = dev(&h);
    assert!(dev_m < 1e-3, "mixed force deviation too large: {dev_m}");
    assert!(
        dev_h > 3.0 * dev_m,
        "fp16 ({dev_h}) should be clearly worse than mixed ({dev_m})"
    );
}

#[test]
fn energy_is_translation_invariant() {
    let (model, sys) = setup();
    let dp = DeepPotential::new(model, PrecisionMode::Double);
    let nl = NeighborList::build(&sys, dp.cutoff());
    let e0 = dp.compute(&sys, &nl).energy;

    let mut shifted = sys.clone();
    for p in &mut shifted.positions {
        p[0] += 1.37;
        p[1] -= 0.81;
        p[2] += 2.02;
    }
    shifted.wrap_positions();
    let nl = NeighborList::build(&shifted, dp.cutoff());
    let e1 = dp.compute(&shifted, &nl).energy;
    assert!((e0 - e1).abs() < 1e-9, "translation changed E: {e0} vs {e1}");
}

#[test]
fn energy_is_permutation_invariant() {
    let (model, sys) = setup();
    let dp = DeepPotential::new(model, PrecisionMode::Double);
    let nl = NeighborList::build(&sys, dp.cutoff());
    let e0 = dp.compute(&sys, &nl).energy;

    // reverse the atom order
    let mut permuted = sys.clone();
    permuted.positions.reverse();
    permuted.types.reverse();
    let nl = NeighborList::build(&permuted, dp.cutoff());
    let e1 = dp.compute(&permuted, &nl).energy;
    assert!((e0 - e1).abs() < 1e-9, "permutation changed E: {e0} vs {e1}");
}

#[test]
fn energy_is_rotation_invariant() {
    // Build an open (non-periodic) cluster so a rigid rotation is exact.
    let mut rng = StdRng::seed_from_u64(8);
    let cfg = DpConfig::small(1, 4.5, 24);
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let dp = DeepPotential::new(model, PrecisionMode::Double);

    let mut positions = Vec::new();
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..2 {
                positions.push([
                    20.0 + i as f64 * 2.6,
                    20.0 + j as f64 * 2.6,
                    20.0 + k as f64 * 2.6,
                ]);
            }
        }
    }
    let n = positions.len();
    let mut sys = System::new(Cell::open(60.0, 60.0, 60.0), positions, vec![0; n], vec![63.5]);
    sys.perturb(0.1, &mut rng);
    let nl = NeighborList::build(&sys, dp.cutoff());
    let e0 = dp.compute(&sys, &nl).energy;

    // rotate 30° about z around the cluster centroid
    let (s30, c30) = (30f64.to_radians().sin(), 30f64.to_radians().cos());
    let mut centroid = [0.0; 3];
    for p in &sys.positions {
        for k in 0..3 {
            centroid[k] += p[k] / n as f64;
        }
    }
    let mut rotated = sys.clone();
    for p in &mut rotated.positions {
        let x = p[0] - centroid[0];
        let y = p[1] - centroid[1];
        p[0] = centroid[0] + c30 * x - s30 * y;
        p[1] = centroid[1] + s30 * x + c30 * y;
    }
    let nl = NeighborList::build(&rotated, dp.cutoff());
    let e1 = dp.compute(&rotated, &nl).energy;
    assert!((e0 - e1).abs() < 1e-9, "rotation changed E: {e0} vs {e1}");
}

#[test]
fn model_roundtrips_through_disk() {
    let (model, sys) = setup();
    let json = serde_json::to_string(&model.to_data()).unwrap();
    let back = DpModel::<f64>::from_data(&serde_json::from_str(&json).unwrap());

    let dp_a = DeepPotential::new(model, PrecisionMode::Double);
    let dp_b = DeepPotential::new(back, PrecisionMode::Double);
    let nl = NeighborList::build(&sys, dp_a.cutoff());
    let ea = dp_a.compute(&sys, &nl).energy;
    let eb = dp_b.compute(&sys, &nl).energy;
    assert!((ea - eb).abs() < 1e-10);
}
