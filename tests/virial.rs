//! Integration: the ProdVirial operator is validated against the numeric
//! strain derivative of the energy — `tr(W) = -dE/dλ` at λ=1 for uniform
//! scaling of cell and coordinates — for both a classical potential and
//! the Deep Potential.

use deepmd_repro::core::{DeepPotential, DpConfig, DpModel, PrecisionMode};
use deepmd_repro::md::potential::pair::LennardJones;
use deepmd_repro::md::{lattice, NeighborList, Potential, System};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(sys: &System, lambda: f64) -> System {
    let mut out = sys.clone();
    out.cell = out.cell.scaled([lambda, lambda, lambda]);
    for p in &mut out.positions {
        for d in 0..3 {
            p[d] *= lambda;
        }
    }
    out
}

fn check_virial_trace(pot: &dyn Potential, sys: &System, tol: f64) {
    let nl = NeighborList::build(sys, pot.cutoff());
    let out = pot.compute(sys, &nl);
    let trace = out.virial[0] + out.virial[1] + out.virial[2];

    let eps = 1e-6;
    let e_of = |lambda: f64| {
        let s = scaled(sys, lambda);
        let nl = NeighborList::build(&s, pot.cutoff());
        pot.compute(&s, &nl).energy
    };
    let de_dlambda = (e_of(1.0 + eps) - e_of(1.0 - eps)) / (2.0 * eps);
    assert!(
        (trace + de_dlambda).abs() < tol * de_dlambda.abs().max(1.0),
        "virial trace {trace} vs -dE/dλ {}",
        -de_dlambda
    );
}

#[test]
fn lj_virial_matches_strain_derivative() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut sys = lattice::fcc(5.0, [3, 3, 3], 39.948);
    sys.perturb(0.15, &mut rng);
    let lj = LennardJones::new(0.2, 2.8, 6.0);
    check_virial_trace(&lj, &sys, 1e-5);
}

#[test]
fn dp_virial_matches_strain_derivative() {
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = DpConfig::small(1, 4.5, 20);
    let model = DpModel::<f64>::new_random(cfg, &mut rng);
    let dp = DeepPotential::new(model, PrecisionMode::Double);
    let mut sys = lattice::fcc(3.615, [3, 3, 3], 63.546);
    sys.perturb(0.1, &mut rng);
    check_virial_trace(&dp, &sys, 1e-5);
}
