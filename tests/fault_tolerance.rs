//! Fault-tolerance end-to-end: injected rank kills, dropped/delayed
//! messages, and sabotaged checkpoints must all either be survivable or
//! recovered from bit-exactly — an interrupted-and-recovered run's thermo
//! output and final state are identical to the uninterrupted run's. The
//! `dpmd` binary must surface unrecoverable failures as typed errors with
//! distinct exit codes and no panic spew.
//!
//! Counter- and metrics-sensitive cases run the `dpmd` binary in a
//! subprocess, so process-global dp-obs state never crosses tests; CI also
//! runs this suite with `--test-threads=1`.

use deepmd_repro::app::{parse_config, run};
use deepmd_repro::md::integrate::MdOptions;
use deepmd_repro::md::potential::pair::LennardJones;
use deepmd_repro::md::rng::CounterRng;
use deepmd_repro::md::{lattice, Potential, System};
use deepmd_repro::parallel::{
    expand_chaos, run_parallel_md, Allreduce, ChaosSpec, CommError, DelaySpec, FaultPlan,
    KillSpec, MsgSelector, ParallelCkpt, ParallelOptions, ParallelRun, RunError,
};
use dp_ckpt::Rotation;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn argon() -> System {
    let mut sys = lattice::fcc(5.26, [3, 3, 3], 39.948);
    let mut rng = CounterRng::new(7);
    sys.init_velocities(30.0, &mut rng);
    sys
}

fn lj() -> Arc<dyn Potential> {
    Arc::new(LennardJones::new(0.0104, 3.405, 5.0))
}

fn opts(checkpoint: Option<ParallelCkpt>, faults: Option<FaultPlan>) -> ParallelOptions {
    ParallelOptions {
        md: MdOptions {
            dt: 2.0e-3,
            skin: 1.0,
            thermo_every: 10,
            ..MdOptions::default()
        },
        checkpoint,
        faults,
        comm_deadline: Duration::from_secs(5),
        ..ParallelOptions::default()
    }
}

fn ckpt(dir: &std::path::Path, name: &str) -> ParallelCkpt {
    ParallelCkpt {
        every: 10,
        rotation: Rotation::new(dir.join(name).display().to_string(), 3),
    }
}

/// Identical to the last bit: thermo samples and the gathered final state.
fn assert_bit_exact(straight: &ParallelRun, recovered: &ParallelRun, what: &str) {
    let bits = |r: &ParallelRun| -> Vec<(usize, u64, u64, u64, u64)> {
        r.thermo
            .iter()
            .map(|t| {
                (
                    t.step,
                    t.potential_energy.to_bits(),
                    t.kinetic_energy.to_bits(),
                    t.temperature.to_bits(),
                    t.pressure.to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(bits(straight), bits(recovered), "thermo diverged: {what}");
    assert_eq!(
        straight.system.positions, recovered.system.positions,
        "final positions diverged: {what}"
    );
    assert_eq!(
        straight.system.velocities, recovered.system.velocities,
        "final velocities diverged: {what}"
    );
}

#[test]
fn killed_rank_recovers_bit_exact() {
    let dir = test_dir("dpft-kill-recover");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();
    assert_eq!(straight.recoveries, 0);

    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 33,
            every_epoch: false,
        }),
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt(&dir, "b.ckpt");
    let newest = faulted_ckpt.rotation.slot_path(0);
    let faulted =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(faulted.recoveries, 1, "expected exactly one recovery");
    assert_eq!(
        faulted.recovered_from,
        vec![newest],
        "kill at 33 must reload the newest (step 30) generation"
    );
    assert_bit_exact(&straight, &faulted, "kill at step 33, checkpoint every 10");
}

#[test]
fn corrupted_newest_generation_falls_back() {
    let dir = test_dir("dpft-corrupt-fallback");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    // The generation written at step 30 gets a flipped byte, then the kill
    // at 33: the CRC rejects the newest generation and the rotation falls
    // back to the step-20 one.
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 0,
            step: 33,
            every_epoch: false,
        }),
        corrupt_ckpt_step: Some(30),
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt(&dir, "b.ckpt");
    let fallback = faulted_ckpt.rotation.slot_path(1);
    let faulted =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(faulted.recoveries, 1);
    assert_eq!(
        faulted.recovered_from,
        vec![fallback],
        "corrupt newest generation must fall back to .1"
    );
    assert_bit_exact(&straight, &faulted, "bit-flipped step-30 checkpoint");
}

#[test]
fn torn_checkpoint_write_falls_back() {
    let dir = test_dir("dpft-torn-fallback");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 3,
            step: 37,
            every_epoch: false,
        }),
        torn_ckpt_step: Some(30),
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt(&dir, "b.ckpt");
    let fallback = faulted_ckpt.rotation.slot_path(1);
    let faulted =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(faulted.recoveries, 1);
    assert_eq!(
        faulted.recovered_from,
        vec![fallback],
        "truncated newest generation must fall back to .1"
    );
    assert_bit_exact(&straight, &faulted, "torn step-30 checkpoint write");
}

#[test]
fn dropped_message_is_detected_and_recovered() {
    let dir = test_dir("dpft-drop-recover");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    // Message seq 60 on the 1->0 pair lands well after the first checkpoint
    // (>= 2 messages per pair per step) and well before the run ends. The
    // receiver either sees the wrong message next (protocol error) or times
    // out; both are typed failures the supervisor recovers from.
    let plan = FaultPlan {
        drop_msg: Some(MsgSelector {
            from: 1,
            to: 0,
            seq: 60,
        }),
        ..FaultPlan::default()
    };
    let mut o = opts(Some(ckpt(&dir, "b.ckpt")), Some(plan));
    o.comm_deadline = Duration::from_secs(2);
    let started = Instant::now();
    let faulted = run_parallel_md(&sys, lj(), [2, 2, 1], &o, 60).unwrap();

    assert_eq!(faulted.recoveries, 1, "dropped message must cost one epoch");
    assert_bit_exact(&straight, &faulted, "dropped message 1->0 seq 60");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "recovery took {:?}; the deadline should bound detection",
        started.elapsed()
    );
}

#[test]
fn delayed_message_within_deadline_is_survivable() {
    let sys = argon();

    let straight = run_parallel_md(&sys, lj(), [2, 2, 1], &opts(None, None), 40).unwrap();

    let plan = FaultPlan {
        delay_msg: Some(DelaySpec {
            msg: MsgSelector {
                from: 1,
                to: 0,
                seq: 5,
            },
            delay: Duration::from_millis(100),
        }),
        ..FaultPlan::default()
    };
    let delayed = run_parallel_md(&sys, lj(), [2, 2, 1], &opts(None, Some(plan)), 40).unwrap();

    assert_eq!(delayed.recoveries, 0, "a 100ms delay must be survivable");
    assert_bit_exact(&straight, &delayed, "delayed message 1->0 seq 5");
}

#[test]
fn chaos_schedule_recovers_bit_exact() {
    // Chaos mode: a seed expands into a multi-fault schedule (kills,
    // drops, delays) and the soaked run must still match the clean run to
    // the last bit. Both kills are guaranteed to fire (distinct steps
    // after the first checkpoint); the drop/delay picks may or may not
    // reach their sequence numbers — chaos promises at most
    // `max_failures()` failed epochs, not an exact count.
    let dir = test_dir("dpft-chaos");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 1, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    let spec = ChaosSpec {
        seed: 7,
        kills: 2,
        drops: 1,
        delays: 2,
        max_delay_ms: 20,
    };
    let plan = expand_chaos(&spec, 2, 60, 10).unwrap();
    assert_eq!(plan, expand_chaos(&spec, 2, 60, 10).unwrap(), "schedule must replay");
    let mut o = opts(Some(ckpt(&dir, "b.ckpt")), Some(plan.clone()));
    o.comm_deadline = Duration::from_secs(2);
    o.max_recoveries = plan.max_failures();
    let chaotic = run_parallel_md(&sys, lj(), [2, 1, 1], &o, 60).unwrap();

    assert!(
        chaotic.recoveries >= 2,
        "both scheduled kills must fail an epoch each (got {} recoveries)",
        chaotic.recoveries
    );
    assert!(chaotic.recoveries <= plan.max_failures());
    assert_bit_exact(&straight, &chaotic, "chaos seed 7 on [2,1,1]");
}

#[test]
fn rank_failure_without_checkpointing_is_typed() {
    let sys = argon();
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 0,
            step: 5,
            every_epoch: false,
        }),
        ..FaultPlan::default()
    };
    let started = Instant::now();
    let err = run_parallel_md(&sys, lj(), [2, 2, 1], &opts(None, Some(plan)), 20).unwrap_err();
    match &err {
        RunError::RankFailure { failure } => {
            assert!(
                failure.contains("rank 0") && failure.contains("injected fault"),
                "unexpected failure description: {failure}"
            );
        }
        other => panic!("expected RankFailure, got {other}"),
    }
    // Surviving ranks are woken by the poisoned reductions / dropped
    // endpoints, not by waiting out the 5s deadline.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "peer death took {:?} to surface",
        started.elapsed()
    );
}

#[test]
fn retries_exhausted_is_typed() {
    let dir = test_dir("dpft-retries");
    let sys = argon();
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 15,
            every_epoch: true,
        }),
        ..FaultPlan::default()
    };
    let mut o = opts(Some(ckpt(&dir, "r.ckpt")), Some(plan));
    o.max_recoveries = 1;
    let err = run_parallel_md(&sys, lj(), [2, 2, 1], &o, 30).unwrap_err();
    match &err {
        RunError::RetriesExhausted { attempts, last } => {
            assert_eq!(*attempts, 1);
            assert!(last.contains("injected fault"), "last failure: {last}");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn dead_rank_in_allreduce_fails_peers_within_deadline() {
    let deadline = Duration::from_secs(5);
    let reduce = Arc::new(Allreduce::with_deadline(3, 1, deadline));
    let started = Instant::now();
    let workers: Vec<_> = (0..2)
        .map(|rank| {
            let r = Arc::clone(&reduce);
            std::thread::spawn(move || r.reduce(rank, &[1.0]))
        })
        .collect();
    // Rank 2 "dies" instead of contributing.
    std::thread::sleep(Duration::from_millis(50));
    reduce.poison(2);
    for w in workers {
        let got = w.join().unwrap();
        assert_eq!(got, Err(CommError::PeerFailed { rank: 2 }));
    }
    assert!(
        started.elapsed() < deadline,
        "poison must wake waiters immediately, took {:?}",
        started.elapsed()
    );
}

// ---- deck validation through the app layer ----------------------------

fn lj_parallel_deck(extra: &str) -> String {
    format!(
        r#"{{
            "system": {{"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948}},
            "potential": {{"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0}},
            "temperature": 40.0,
            "dt_fs": 2.0,
            "steps": 30,
            "thermo_every": 10,
            "seed": 7{extra}
        }}"#
    )
}

#[test]
fn fault_keys_without_grid_are_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(r#", "fault_kill_rank": 1"#)).unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("grid"), "{err}");
}

#[test]
fn half_specified_kill_is_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(
        r#", "grid": [2,1,1], "fault_kill_rank": 1"#,
    ))
    .unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("together"), "{err}");
}

#[test]
fn zero_grid_dimension_is_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(r#", "grid": [0,1,1]"#)).unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
}

#[test]
fn parallel_deck_runs_clean() {
    let cfg = parse_config(&lj_parallel_deck(r#", "grid": [2,1,1]"#)).unwrap();
    let mut lines = Vec::new();
    let summary = run(&cfg, |l| lines.push(l.to_string())).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(summary.final_system.len(), 108);
    assert!(
        lines.iter().any(|l| l.contains("2 ranks")),
        "no parallel done line in {lines:?}"
    );
}

// ---- the dpmd binary: exit codes, stderr discipline, metrics ----------

fn dpmd(deck_path: &std::path::Path, extra_args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_dpmd"))
        .arg(deck_path)
        .args(extra_args)
        .output()
        .expect("failed to spawn dpmd")
}

#[test]
fn exhausted_retries_exit_typed_without_panic_spew() {
    let dir = test_dir("dpft-bin-retries");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "fault_kill_rank": 1,
        "fault_kill_step": 15,
        "fault_kill_every_epoch": true,
        "fault_max_retries": 1"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();

    let out = dpmd(&deck_path, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("retries exhausted") && stderr.contains("injected fault"),
        "untyped stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stdout.contains("panicked"),
        "panic spew leaked:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn injected_fault_counters_reach_metrics_jsonl() {
    let dir = test_dir("dpft-bin-metrics");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "fault_kill_rank": 1,
        "fault_kill_step": 15"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();
    let metrics = dir.join("metrics.jsonl");

    let out = dpmd(&deck_path, &["--metrics", metrics.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "one-shot kill must be recovered:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("recovered from 1 failed epoch"),
        "no recovery log line:\n{stdout}"
    );

    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        jsonl.contains("\"fault.detected\""),
        "fault.detected missing from metrics:\n{jsonl}"
    );
    assert!(
        jsonl.contains("\"recovery.attempt\""),
        "recovery.attempt missing from metrics:\n{jsonl}"
    );
    assert!(
        jsonl.contains("\"recovery.success\""),
        "recovery.success missing from metrics:\n{jsonl}"
    );
}

#[test]
fn unknown_deck_key_exits_2_missing_file_exits_3() {
    let dir = test_dir("dpft-bin-exit-codes");
    let deck_path = dir.join("typo.json");
    std::fs::write(&deck_path, lj_parallel_deck(r#", "stepz": 1"#)).unwrap();
    let out = dpmd(&deck_path, &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("stepz"));

    let out = dpmd(&dir.join("does-not-exist.json"), &[]);
    assert_eq!(out.status.code(), Some(3));
}
