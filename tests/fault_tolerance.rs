//! Fault-tolerance end-to-end: injected rank kills, dropped/delayed
//! messages, and sabotaged checkpoints must all either be survivable or
//! recovered from bit-exactly — an interrupted-and-recovered run's thermo
//! output and final state are identical to the uninterrupted run's. The
//! `dpmd` binary must surface unrecoverable failures as typed errors with
//! distinct exit codes and no panic spew.
//!
//! Counter- and metrics-sensitive cases run the `dpmd` binary in a
//! subprocess, so process-global dp-obs state never crosses tests; CI also
//! runs this suite with `--test-threads=1`.

use deepmd_repro::app::{parse_config, run};
use deepmd_repro::md::integrate::MdOptions;
use deepmd_repro::md::potential::pair::LennardJones;
use deepmd_repro::md::rng::CounterRng;
use deepmd_repro::md::{lattice, Potential, System};
use deepmd_repro::parallel::{
    expand_chaos, expand_soak, run_parallel_md, Allreduce, BreakInvariant, ChaosSpec, CommError,
    DelaySpec, FaultPlan, KillSpec, MsgSelector, ParallelCkpt, ParallelOptions, ParallelRun,
    RunError, ShardTear, SoakSpec,
};
use dp_ckpt::Rotation;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn argon() -> System {
    let mut sys = lattice::fcc(5.26, [3, 3, 3], 39.948);
    let mut rng = CounterRng::new(7);
    sys.init_velocities(30.0, &mut rng);
    sys
}

fn lj() -> Arc<dyn Potential> {
    Arc::new(LennardJones::new(0.0104, 3.405, 5.0))
}

fn opts(checkpoint: Option<ParallelCkpt>, faults: Option<FaultPlan>) -> ParallelOptions {
    ParallelOptions {
        md: MdOptions {
            dt: 2.0e-3,
            skin: 1.0,
            thermo_every: 10,
            ..MdOptions::default()
        },
        checkpoint,
        faults,
        comm_deadline: Duration::from_secs(5),
        ..ParallelOptions::default()
    }
}

fn ckpt(dir: &std::path::Path, name: &str) -> ParallelCkpt {
    ParallelCkpt {
        every: 10,
        rotation: Rotation::new(dir.join(name).display().to_string(), 3),
        shards: false,
    }
}

/// Like [`ckpt`] but with per-rank shards on, enabling localized recovery.
fn ckpt_sharded(dir: &std::path::Path, name: &str) -> ParallelCkpt {
    ParallelCkpt {
        shards: true,
        ..ckpt(dir, name)
    }
}

/// Identical to the last bit: thermo samples and the gathered final state.
fn assert_bit_exact(straight: &ParallelRun, recovered: &ParallelRun, what: &str) {
    let bits = |r: &ParallelRun| -> Vec<(usize, u64, u64, u64, u64)> {
        r.thermo
            .iter()
            .map(|t| {
                (
                    t.step,
                    t.potential_energy.to_bits(),
                    t.kinetic_energy.to_bits(),
                    t.temperature.to_bits(),
                    t.pressure.to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(bits(straight), bits(recovered), "thermo diverged: {what}");
    assert_eq!(
        straight.system.positions, recovered.system.positions,
        "final positions diverged: {what}"
    );
    assert_eq!(
        straight.system.velocities, recovered.system.velocities,
        "final velocities diverged: {what}"
    );
}

#[test]
fn killed_rank_recovers_bit_exact() {
    let dir = test_dir("dpft-kill-recover");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();
    assert_eq!(straight.recoveries, 0);

    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 33,
            every_epoch: false,
        }),
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt(&dir, "b.ckpt");
    let newest = faulted_ckpt.rotation.slot_path(0);
    let faulted =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(faulted.recoveries, 1, "expected exactly one recovery");
    assert_eq!(
        faulted.recovered_from,
        vec![newest],
        "kill at 33 must reload the newest (step 30) generation"
    );
    assert_bit_exact(&straight, &faulted, "kill at step 33, checkpoint every 10");
}

#[test]
fn corrupted_newest_generation_falls_back() {
    let dir = test_dir("dpft-corrupt-fallback");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    // The generation written at step 30 gets a flipped byte, then the kill
    // at 33: the CRC rejects the newest generation and the rotation falls
    // back to the step-20 one.
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 0,
            step: 33,
            every_epoch: false,
        }),
        corrupt_ckpt_step: Some(30),
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt(&dir, "b.ckpt");
    let fallback = faulted_ckpt.rotation.slot_path(1);
    let faulted =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(faulted.recoveries, 1);
    assert_eq!(
        faulted.recovered_from,
        vec![fallback],
        "corrupt newest generation must fall back to .1"
    );
    assert_bit_exact(&straight, &faulted, "bit-flipped step-30 checkpoint");
}

#[test]
fn torn_checkpoint_write_falls_back() {
    let dir = test_dir("dpft-torn-fallback");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 3,
            step: 37,
            every_epoch: false,
        }),
        torn_ckpt_step: Some(30),
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt(&dir, "b.ckpt");
    let fallback = faulted_ckpt.rotation.slot_path(1);
    let faulted =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(faulted.recoveries, 1);
    assert_eq!(
        faulted.recovered_from,
        vec![fallback],
        "truncated newest generation must fall back to .1"
    );
    assert_bit_exact(&straight, &faulted, "torn step-30 checkpoint write");
}

#[test]
fn dropped_message_is_detected_and_recovered() {
    let dir = test_dir("dpft-drop-recover");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    // Message seq 60 on the 1->0 pair lands well after the first checkpoint
    // (>= 2 messages per pair per step) and well before the run ends. The
    // receiver either sees the wrong message next (protocol error) or times
    // out; both are typed failures the supervisor recovers from.
    let plan = FaultPlan {
        drop_msg: Some(MsgSelector {
            from: 1,
            to: 0,
            seq: 60,
        }),
        ..FaultPlan::default()
    };
    let mut o = opts(Some(ckpt(&dir, "b.ckpt")), Some(plan));
    o.comm_deadline = Duration::from_secs(2);
    let started = Instant::now();
    let faulted = run_parallel_md(&sys, lj(), [2, 2, 1], &o, 60).unwrap();

    assert_eq!(faulted.recoveries, 1, "dropped message must cost one epoch");
    assert_bit_exact(&straight, &faulted, "dropped message 1->0 seq 60");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "recovery took {:?}; the deadline should bound detection",
        started.elapsed()
    );
}

#[test]
fn delayed_message_within_deadline_is_survivable() {
    let sys = argon();

    let straight = run_parallel_md(&sys, lj(), [2, 2, 1], &opts(None, None), 40).unwrap();

    let plan = FaultPlan {
        delay_msg: Some(DelaySpec {
            msg: MsgSelector {
                from: 1,
                to: 0,
                seq: 5,
            },
            delay: Duration::from_millis(100),
        }),
        ..FaultPlan::default()
    };
    let delayed = run_parallel_md(&sys, lj(), [2, 2, 1], &opts(None, Some(plan)), 40).unwrap();

    assert_eq!(delayed.recoveries, 0, "a 100ms delay must be survivable");
    assert_bit_exact(&straight, &delayed, "delayed message 1->0 seq 5");
}

#[test]
fn chaos_schedule_recovers_bit_exact() {
    // Chaos mode: a seed expands into a multi-fault schedule (kills,
    // drops, delays) and the soaked run must still match the clean run to
    // the last bit. Both kills are guaranteed to fire (distinct steps
    // after the first checkpoint); the drop/delay picks may or may not
    // reach their sequence numbers — chaos promises at most
    // `max_failures()` failed epochs, not an exact count.
    let dir = test_dir("dpft-chaos");
    let sys = argon();

    let straight =
        run_parallel_md(&sys, lj(), [2, 1, 1], &opts(Some(ckpt(&dir, "a.ckpt")), None), 60)
            .unwrap();

    let spec = ChaosSpec {
        seed: 7,
        kills: 2,
        drops: 1,
        delays: 2,
        max_delay_ms: 20,
    };
    let plan = expand_chaos(&spec, 2, 60, 10).unwrap();
    assert_eq!(plan, expand_chaos(&spec, 2, 60, 10).unwrap(), "schedule must replay");
    let mut o = opts(Some(ckpt(&dir, "b.ckpt")), Some(plan.clone()));
    o.comm_deadline = Duration::from_secs(2);
    o.max_recoveries = plan.max_failures();
    let chaotic = run_parallel_md(&sys, lj(), [2, 1, 1], &o, 60).unwrap();

    assert!(
        chaotic.recoveries >= 2,
        "both scheduled kills must fail an epoch each (got {} recoveries)",
        chaotic.recoveries
    );
    assert!(chaotic.recoveries <= plan.max_failures());
    assert_bit_exact(&straight, &chaotic, "chaos seed 7 on [2,1,1]");
}

// ---- recovery tiering: localized respawn vs. global reload ------------

#[test]
fn localized_respawn_recovers_bit_exact() {
    // Tier 1: with per-rank shards on, a mid-run kill is repaired in
    // place — the dead rank is rebuilt from its shard while the survivors
    // hold at the step barrier — and the run never reloads the global
    // rotation. The result must still match the clean run to the bit.
    let dir = test_dir("dpft-local-respawn");
    let sys = argon();

    let straight = run_parallel_md(
        &sys,
        lj(),
        [2, 2, 1],
        &opts(Some(ckpt_sharded(&dir, "a.ckpt")), None),
        60,
    )
    .unwrap();
    assert_eq!(straight.recoveries, 0);
    assert_eq!(straight.local_recoveries, 0);

    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 33,
            every_epoch: false,
        }),
        ..FaultPlan::default()
    };
    let recovered = run_parallel_md(
        &sys,
        lj(),
        [2, 2, 1],
        &opts(Some(ckpt_sharded(&dir, "b.ckpt")), Some(plan)),
        60,
    )
    .unwrap();

    assert_eq!(
        recovered.local_recoveries, 1,
        "kill at 33 with shards at 30 must be repaired in place"
    );
    assert_eq!(
        recovered.recoveries, 0,
        "localized recovery must not reload the global checkpoint"
    );
    assert!(
        recovered.recovered_from.is_empty(),
        "no generation reload expected, got {:?}",
        recovered.recovered_from
    );
    assert_bit_exact(&straight, &recovered, "localized respawn of rank 1 at 33");
}

#[test]
fn torn_shard_escalates_to_global_reload() {
    // Tier 2: the dead rank's newest shard was torn mid-write, so the
    // localized attempt finds it invalid and the supervisor escalates to
    // the global rotation — which still recovers bit-exactly.
    let dir = test_dir("dpft-torn-shard");
    let sys = argon();

    let straight = run_parallel_md(
        &sys,
        lj(),
        [2, 2, 1],
        &opts(Some(ckpt_sharded(&dir, "a.ckpt")), None),
        60,
    )
    .unwrap();

    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 33,
            every_epoch: false,
        }),
        torn_shards: vec![ShardTear { rank: 1, step: 30 }],
        ..FaultPlan::default()
    };
    let faulted_ckpt = ckpt_sharded(&dir, "b.ckpt");
    let newest = faulted_ckpt.rotation.slot_path(0);
    let recovered =
        run_parallel_md(&sys, lj(), [2, 2, 1], &opts(Some(faulted_ckpt), Some(plan)), 60).unwrap();

    assert_eq!(
        recovered.local_recoveries, 0,
        "a torn shard must abort the localized tier"
    );
    assert_eq!(recovered.recoveries, 1, "expected one global reload");
    assert_eq!(
        recovered.recovered_from,
        vec![newest],
        "global tier must reload the newest (step 30) generation"
    );
    assert_bit_exact(&straight, &recovered, "torn shard at 30, kill at 33");
}

#[test]
fn chaos_soak_recovers_bit_exact_with_audits() {
    // Soak mode: a seed expands into a compound schedule (kill, drop,
    // delay, torn shard) while the invariant auditor runs every 10 steps.
    // The soaked run must complete with every audit passing and match
    // the clean run to the bit.
    let dir = test_dir("dpft-soak");
    let sys = argon();

    let straight = run_parallel_md(
        &sys,
        lj(),
        [2, 1, 1],
        &opts(Some(ckpt_sharded(&dir, "a.ckpt")), None),
        60,
    )
    .unwrap();

    let spec = SoakSpec {
        seed: 11,
        kills: 1,
        drops: 1,
        delays: 1,
        torn_shards: 1,
        max_delay_ms: 20,
        audit_every: 10,
    };
    let plan = expand_soak(&spec, 2, 60, 10).unwrap();
    assert_eq!(
        plan,
        expand_soak(&spec, 2, 60, 10).unwrap(),
        "soak schedule must replay bit-exactly"
    );
    let mut o = opts(Some(ckpt_sharded(&dir, "b.ckpt")), Some(plan.clone()));
    o.comm_deadline = Duration::from_secs(2);
    o.max_recoveries = plan.max_failures();
    o.audit_every = 10;
    let soaked = run_parallel_md(&sys, lj(), [2, 1, 1], &o, 60).unwrap();

    assert!(
        soaked.rank_stats.iter().any(|s| s.audits_passed > 0),
        "auditor never ran: {:?}",
        soaked.rank_stats.iter().map(|s| s.audits_passed).collect::<Vec<_>>()
    );
    assert!(soaked.recoveries + soaked.local_recoveries >= 1);
    assert_bit_exact(&straight, &soaked, "chaos soak seed 11 on [2,1,1]");
}

#[test]
fn broken_invariant_fails_fast_typed() {
    // The test-only sabotage hook corrupts one rank's audit *report* (one
    // phantom atom); the atom-count conservation check must trip at the
    // first audit after the planned step and surface as a typed error —
    // no recovery attempt, the physics can't be trusted.
    let dir = test_dir("dpft-break-invariant");
    let sys = argon();
    let plan = FaultPlan {
        break_invariant: Some(BreakInvariant { rank: 0, step: 15 }),
        ..FaultPlan::default()
    };
    let mut o = opts(Some(ckpt_sharded(&dir, "a.ckpt")), Some(plan));
    o.audit_every = 10;
    let err = run_parallel_md(&sys, lj(), [2, 1, 1], &o, 60).unwrap_err();
    match &err {
        RunError::Audit { failure } => {
            assert_eq!(failure.check, "atom_count", "wrong check tripped: {failure}");
            assert_eq!(
                failure.step, 20,
                "sabotage planned at 15 must trip the first audit at/after it"
            );
        }
        other => panic!("expected Audit, got {other}"),
    }
}

#[test]
fn rank_failure_without_checkpointing_is_typed() {
    let sys = argon();
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 0,
            step: 5,
            every_epoch: false,
        }),
        ..FaultPlan::default()
    };
    let started = Instant::now();
    let err = run_parallel_md(&sys, lj(), [2, 2, 1], &opts(None, Some(plan)), 20).unwrap_err();
    match &err {
        RunError::RankFailure { failure } => {
            assert!(
                failure.contains("rank 0") && failure.contains("injected fault"),
                "unexpected failure description: {failure}"
            );
        }
        other => panic!("expected RankFailure, got {other}"),
    }
    // Surviving ranks are woken by the poisoned reductions / dropped
    // endpoints, not by waiting out the 5s deadline.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "peer death took {:?} to surface",
        started.elapsed()
    );
}

#[test]
fn retries_exhausted_is_typed() {
    let dir = test_dir("dpft-retries");
    let sys = argon();
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 15,
            every_epoch: true,
        }),
        ..FaultPlan::default()
    };
    let mut o = opts(Some(ckpt(&dir, "r.ckpt")), Some(plan));
    o.max_recoveries = 1;
    let err = run_parallel_md(&sys, lj(), [2, 2, 1], &o, 30).unwrap_err();
    match &err {
        RunError::RetriesExhausted { attempts, last } => {
            assert_eq!(*attempts, 1);
            assert!(last.contains("injected fault"), "last failure: {last}");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn dead_rank_in_allreduce_fails_peers_within_deadline() {
    let deadline = Duration::from_secs(5);
    let reduce = Arc::new(Allreduce::with_deadline(3, 1, deadline));
    let started = Instant::now();
    let workers: Vec<_> = (0..2)
        .map(|rank| {
            let r = Arc::clone(&reduce);
            std::thread::spawn(move || r.reduce(rank, &[1.0]))
        })
        .collect();
    // Rank 2 "dies" instead of contributing.
    std::thread::sleep(Duration::from_millis(50));
    reduce.poison(2);
    for w in workers {
        let got = w.join().unwrap();
        assert_eq!(got, Err(CommError::PeerFailed { rank: 2 }));
    }
    assert!(
        started.elapsed() < deadline,
        "poison must wake waiters immediately, took {:?}",
        started.elapsed()
    );
}

// ---- deck validation through the app layer ----------------------------

fn lj_parallel_deck(extra: &str) -> String {
    format!(
        r#"{{
            "system": {{"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948}},
            "potential": {{"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0}},
            "temperature": 40.0,
            "dt_fs": 2.0,
            "steps": 30,
            "thermo_every": 10,
            "seed": 7{extra}
        }}"#
    )
}

#[test]
fn checkpoint_shards_without_grid_is_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(r#", "checkpoint_shards": true"#)).unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("grid"), "{err}");
}

#[test]
fn checkpoint_shards_without_checkpointing_is_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(
        r#", "grid": [2,1,1], "checkpoint_shards": true"#,
    ))
    .unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("checkpoint_every"), "{err}");
}

#[test]
fn fault_keys_without_grid_are_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(r#", "fault_kill_rank": 1"#)).unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("grid"), "{err}");
}

#[test]
fn half_specified_kill_is_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(
        r#", "grid": [2,1,1], "fault_kill_rank": 1"#,
    ))
    .unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("together"), "{err}");
}

#[test]
fn zero_grid_dimension_is_a_deck_error() {
    let cfg = parse_config(&lj_parallel_deck(r#", "grid": [0,1,1]"#)).unwrap();
    let err = run(&cfg, |_| {}).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
}

#[test]
fn parallel_deck_runs_clean() {
    let cfg = parse_config(&lj_parallel_deck(r#", "grid": [2,1,1]"#)).unwrap();
    let mut lines = Vec::new();
    let summary = run(&cfg, |l| lines.push(l.to_string())).unwrap();
    assert_eq!(summary.recoveries, 0);
    assert_eq!(summary.final_system.len(), 108);
    assert!(
        lines.iter().any(|l| l.contains("2 ranks")),
        "no parallel done line in {lines:?}"
    );
}

/// The always-on flight recorder: a rank kill must leave a post-mortem
/// `"event":"flight_recorder"` line on the metrics stream whose window
/// covers at least 16 steps leading up to the fault. Installs the
/// process-global metrics sink, so it relies on this suite's
/// `--test-threads=1` discipline (see module docs).
#[test]
fn flight_recorder_dumps_steps_before_rank_death() {
    let dir = test_dir("dpft-flight-recorder");
    let metrics_path = dir.join("flight.jsonl");
    dp_obs::metrics::install(metrics_path.to_str().unwrap()).unwrap();
    dp_obs::enable();

    // Shards on: the kill is absorbed by a localized respawn, and the
    // supervisor dumps the dead rank's ring before deciding on recovery.
    let plan = FaultPlan {
        kill: Some(KillSpec {
            rank: 1,
            step: 33,
            every_epoch: false,
        }),
        ..FaultPlan::default()
    };
    let run = run_parallel_md(
        &argon(),
        lj(),
        [2, 1, 1],
        &opts(Some(ckpt_sharded(&dir, "a.ckpt")), Some(plan)),
        60,
    );

    dp_obs::disable();
    dp_obs::metrics::uninstall().unwrap().unwrap();
    let run = run.unwrap();
    assert_eq!(run.local_recoveries, 1, "kill at 33 must be repaired in place");

    let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
    let dump = jsonl
        .lines()
        .find(|l| {
            l.contains("\"event\":\"flight_recorder\"") && l.contains("\"reason\":\"rank_death\"")
        })
        .unwrap_or_else(|| panic!("no rank_death flight dump in:\n{jsonl}"));
    assert!(dump.contains("\"rank\":1,"), "{dump}");

    // The ring (capacity 64) holds every step the dead rank completed:
    // the window must reach back >= 16 steps and end just before the kill.
    let n_steps = dump.matches("\"step\":").count();
    assert!(n_steps >= 16, "window covers only {n_steps} steps: {dump}");
    assert!(dump.contains("\"step\":32,"), "window missing step 32: {dump}");
    for key in [
        "wall_us", "compute_us", "comm_us", "wait_us", "neigh_us", "io_us", "ghost_atoms",
        "bytes", "flops",
    ] {
        assert!(
            dump.contains(&format!("\"{key}\":")),
            "step record missing {key}: {dump}"
        );
    }
    // the dump is also counted (always-on counter, survives disable())
    assert!(dp_obs::counter("flight.dumps").get() >= 1);
}

// ---- the dpmd binary: exit codes, stderr discipline, metrics ----------

fn dpmd(deck_path: &std::path::Path, extra_args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_dpmd"))
        .arg(deck_path)
        .args(extra_args)
        .output()
        .expect("failed to spawn dpmd")
}

#[test]
fn exhausted_retries_exit_typed_without_panic_spew() {
    let dir = test_dir("dpft-bin-retries");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "fault_kill_rank": 1,
        "fault_kill_step": 15,
        "fault_kill_every_epoch": true,
        "fault_max_retries": 1"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();

    let out = dpmd(&deck_path, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("retries exhausted") && stderr.contains("injected fault"),
        "untyped stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stdout.contains("panicked"),
        "panic spew leaked:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn injected_fault_counters_reach_metrics_jsonl() {
    let dir = test_dir("dpft-bin-metrics");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "fault_kill_rank": 1,
        "fault_kill_step": 15"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();
    let metrics = dir.join("metrics.jsonl");

    let out = dpmd(&deck_path, &["--metrics", metrics.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "one-shot kill must be recovered:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("recovered from 1 failed epoch"),
        "no recovery log line:\n{stdout}"
    );

    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        jsonl.contains("\"fault.detected\""),
        "fault.detected missing from metrics:\n{jsonl}"
    );
    assert!(
        jsonl.contains("\"recovery.attempt\""),
        "recovery.attempt missing from metrics:\n{jsonl}"
    );
    assert!(
        jsonl.contains("\"recovery.success\""),
        "recovery.success missing from metrics:\n{jsonl}"
    );
}

#[test]
fn recovery_tiers_reach_metrics_jsonl() {
    // Tier 1 drill through the binary: shards on, one kill. The metrics
    // stream must carry the localized counters and the recovery-summary
    // tier, and the stdout log must say "in place", not "reload".
    let dir = test_dir("dpft-bin-local-metrics");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "checkpoint_shards": true,
        "fault_kill_rank": 1,
        "fault_kill_step": 15"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();
    let metrics = dir.join("metrics.jsonl");

    let out = dpmd(&deck_path, &["--metrics", metrics.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "sharded kill must be repaired in place:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("localized respawn"),
        "no localized-recovery log line:\n{stdout}"
    );
    assert!(
        !stdout.contains("via checkpoint reload"),
        "localized recovery must not reload globally:\n{stdout}"
    );

    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    for needle in [
        "\"recovery.local.attempt\"",
        "\"recovery.local.success\"",
        "\"recovery.latency_us\"",
        "\"tier\":\"local\"",
    ] {
        assert!(jsonl.contains(needle), "{needle} missing from metrics:\n{jsonl}");
    }
    assert!(
        !jsonl.contains("\"recovery.local.fallback\""),
        "clean localized recovery must not record a fallback:\n{jsonl}"
    );
}

#[test]
fn chaos_soak_deck_completes_with_audits_passing() {
    // The bounded soak smoke CI runs: compound faults + auditor through
    // the deck interface, must exit 0 with audits recorded as passed.
    let dir = test_dir("dpft-bin-soak");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "checkpoint_shards": true,
        "fault_comm_deadline_ms": 2000,
        "chaos_soak": {{"seed": 11, "kills": 1, "drops": 1, "delays": 1, "torn_shards": 1, "max_delay_ms": 20}}"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();
    let metrics = dir.join("metrics.jsonl");

    let out = dpmd(&deck_path, &["--metrics", metrics.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "soak deck must survive its own schedule:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        jsonl.contains("\"audit.passed\""),
        "audit.passed missing from metrics:\n{jsonl}"
    );
    assert!(
        !jsonl.contains("\"audit.failed\""),
        "soak must not trip the auditor:\n{jsonl}"
    );
}

#[test]
fn broken_invariant_deck_exits_6() {
    // The deliberately-injected invariant violation must produce the
    // typed audit failure and its own exit code — distinct from both deck
    // errors and ordinary fault-tolerance failures.
    let dir = test_dir("dpft-bin-audit");
    let base = dir.join("run.ckpt").display().to_string();
    let deck = lj_parallel_deck(&format!(
        r#",
        "grid": [2,1,1],
        "checkpoint_every": 10,
        "checkpoint_path": "{base}",
        "audit_every": 10,
        "fault_break_invariant": [0, 15]"#
    ));
    let deck_path = dir.join("deck.json");
    std::fs::write(&deck_path, deck).unwrap();

    let out = dpmd(&deck_path, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(6),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("invariant audit") && stderr.contains("atom_count"),
        "untyped audit failure:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stdout.contains("panicked"),
        "panic spew leaked:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn unknown_deck_key_exits_2_missing_file_exits_3() {
    let dir = test_dir("dpft-bin-exit-codes");
    let deck_path = dir.join("typo.json");
    std::fs::write(&deck_path, lj_parallel_deck(r#", "stepz": 1"#)).unwrap();
    let out = dpmd(&deck_path, &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("stepz"));

    let out = dpmd(&dir.join("does-not-exist.json"), &[]);
    assert_eq!(out.status.code(), Some(3));
}
