#!/bin/sh
# Tier-1 smoke target (ROADMAP.md): build + full test suite, then exercise
# the checkpoint subsystem end-to-end *outside* `cargo test` — a tiny dpmd
# deck run to completion, the same deck "killed" at the midpoint, resumed
# with `dpmd --resume`, and the overlapping thermo lines required to match
# the uninterrupted run byte-for-byte.
set -e

cargo build --release --workspace
cargo test -q --workspace

DPMD=target/release/dpmd
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# deck <steps> <deck-path> <checkpoint-base>
deck() {
  cat > "$2" <<EOF
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": $1,
  "thermo_every": 10,
  "checkpoint_every": 20,
  "checkpoint_path": "$3",
  "seed": 7
}
EOF
}

# Uninterrupted 80-step run (same checkpoint stride, so the
# neighbor-rebuild schedule matches the resumed run).
deck 80 "$DIR/straight.json" "$DIR/straight.ckpt"
"$DPMD" "$DIR/straight.json" | grep '^step' > "$DIR/straight.thermo"

# Same deck stopped at step 40, then resumed to 80.
deck 40 "$DIR/first.json" "$DIR/killed.ckpt"
"$DPMD" "$DIR/first.json" > /dev/null
deck 80 "$DIR/second.json" "$DIR/killed.ckpt"
"$DPMD" "$DIR/second.json" --resume "$DIR/killed.ckpt" \
  | grep '^step' > "$DIR/resumed.thermo"

# The resumed run re-emits exactly the post-midpoint samples; they must be
# bit-identical to the straight run's.
awk '$2 > 40' "$DIR/straight.thermo" > "$DIR/straight.tail"
diff -u "$DIR/straight.tail" "$DIR/resumed.thermo"
echo "tier1: dpmd --resume round trip is bit-exact"

# Bench smoke: a tiny run with --metrics must yield per-step JSONL that
# aggregates into a parseable BENCH document with a positive s/step/atom
# (benchcheck exits non-zero otherwise).
cat > "$DIR/bench.json" <<EOF
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": 20,
  "thermo_every": 10,
  "seed": 7
}
EOF
"$DPMD" "$DIR/bench.json" --metrics "$DIR/metrics.jsonl" > /dev/null
test -s "$DIR/metrics.jsonl"
target/release/benchcheck --from-metrics "$DIR/metrics.jsonl" \
  --workload tier1 --out "$DIR/BENCH_tier1.json"
target/release/benchcheck "$DIR/BENCH_tier1.json"
echo "tier1: bench smoke produced a valid BENCH_tier1.json"

# Bench regression gate: regenerate the headline benchmark and compare
# per-workload s/step/atom against the committed baseline. The tolerance
# is a factor (machine/CI noise, not physics); an accidental hot-path
# regression blows way past it.
cargo run --release -q -p dp-bench --bin bench_dpmd -- --out "$DIR/BENCH_new.json"
target/release/benchcheck "$DIR/BENCH_new.json"
target/release/benchcheck --compare BENCH_dpmd.json "$DIR/BENCH_new.json" --tol 3.0
echo "tier1: regenerated bench within tolerance of committed BENCH_dpmd.json"

# Fault-tolerance smoke: a parallel deck with an injected rank kill must
# recover from the checkpoint rotation, log the recovery, surface the
# typed counters in --metrics, and exit 0.
cat > "$DIR/fault.json" <<EOF
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": 30,
  "thermo_every": 10,
  "grid": [2, 1, 1],
  "checkpoint_every": 10,
  "checkpoint_path": "$DIR/fault.ckpt",
  "fault_kill_rank": 1,
  "fault_kill_step": 15,
  "seed": 7
}
EOF
"$DPMD" "$DIR/fault.json" --metrics "$DIR/fault-metrics.jsonl" \
  --prom-dump "$DIR/fault-prom.txt" \
  | grep -q 'recovered from 1 failed epoch'
grep -q 'fault.detected' "$DIR/fault-metrics.jsonl"
grep -q 'recovery.success' "$DIR/fault-metrics.jsonl"
# the flight recorder's pre-fault window rides the same metrics stream
grep -q '"event":"flight_recorder"' "$DIR/fault-metrics.jsonl"
# the Prometheus snapshot passes the strict parser and carries the fault
# counters and per-phase roofline gauges
"$DPMD" promcheck "$DIR/fault-prom.txt"
grep -q 'dpmd_fault_detected' "$DIR/fault-prom.txt"
grep -q 'dpmd_roofline_achieved_gflops{phase="compute"}' "$DIR/fault-prom.txt"
echo "tier1: injected rank kill recovered bit-exactly via checkpoint"

# Per-rank observability smoke: a parallel deck driven with --trace
# --metrics --imbalance-report must produce one merged chrome trace with a
# tid lane per rank, per-rank histogram rows plus heartbeat and imbalance
# events in the JSONL, and the breakdown table on stdout.
cat > "$DIR/obs.json" <<EOF
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": 30,
  "thermo_every": 10,
  "grid": [2, 1, 1],
  "report_every": 10,
  "seed": 7
}
EOF
"$DPMD" "$DIR/obs.json" --trace "$DIR/obs-trace.json" \
  --metrics "$DIR/obs-metrics.jsonl" --imbalance-report > "$DIR/obs.out"
grep -q 'rank imbalance' "$DIR/obs.out"
grep -q '"tid":0' "$DIR/obs-trace.json"
grep -q '"tid":1' "$DIR/obs-trace.json"
grep -q '"event":"hist"' "$DIR/obs-metrics.jsonl"
grep -q '"p95":' "$DIR/obs-metrics.jsonl"
grep -q '"event":"imbalance_heartbeat"' "$DIR/obs-metrics.jsonl"
grep -q '"event":"imbalance"' "$DIR/obs-metrics.jsonl"
echo "tier1: per-rank trace and imbalance analyzer artifacts validated"

# An unrecoverable fault (re-killed every epoch, retry budget 1) must exit
# with the dedicated fault code 5, a typed message, and no panic spew.
cat > "$DIR/fatal.json" <<EOF
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": 30,
  "thermo_every": 10,
  "grid": [2, 1, 1],
  "checkpoint_every": 10,
  "checkpoint_path": "$DIR/fatal.ckpt",
  "fault_kill_rank": 1,
  "fault_kill_step": 15,
  "fault_kill_every_epoch": true,
  "fault_max_retries": 1,
  "seed": 7
}
EOF
set +e
"$DPMD" "$DIR/fatal.json" > /dev/null 2> "$DIR/fatal.err"
code=$?
set -e
test "$code" -eq 5
grep -q 'retries exhausted' "$DIR/fatal.err"
if grep -q 'panicked' "$DIR/fatal.err"; then
  echo "tier1: panic spew leaked into a typed failure" >&2
  exit 1
fi
echo "tier1: unrecoverable fault exits with typed code 5"

# Chaos smoke: one deck key expands a seed into a deterministic schedule
# of kills/drops/delays; the run must recover from all of them and exit 0.
cat > "$DIR/chaos.json" <<EOF
{
  "system": {"kind": "fcc", "a0": 5.26, "reps": [3,3,3], "mass": 39.948},
  "potential": {"kind": "lennard_jones", "eps": 0.0104, "sigma": 3.405, "rcut": 5.0},
  "temperature": 40.0,
  "dt_fs": 2.0,
  "steps": 60,
  "thermo_every": 10,
  "grid": [2, 1, 1],
  "checkpoint_every": 10,
  "checkpoint_path": "$DIR/chaos.ckpt",
  "fault_chaos": {"seed": 7, "kills": 2, "drops": 1, "delays": 2, "max_delay_ms": 20},
  "fault_comm_deadline_ms": 2000,
  "seed": 7
}
EOF
"$DPMD" "$DIR/chaos.json" | grep -q 'recovered from'
echo "tier1: fault_chaos schedule recovered via checkpoint rotation"

# Serve smoke: daemon on an ephemeral port, one deck job polled to done,
# one eval, /metrics quantiles, then a graceful drain that exits 0.
"$DPMD" serve --addr 127.0.0.1:0 --addr-file "$DIR/serve.addr" \
  --state-dir "$DIR/serve-state" > "$DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  test -s "$DIR/serve.addr" && break
  sleep 0.1
done
ADDR=$(cat "$DIR/serve.addr")

deck 40 "$DIR/serve-job.json" "$DIR/serve-job.ckpt"
"$DPMD" request POST "http://$ADDR/v1/jobs" --body "$DIR/serve-job.json" \
  > "$DIR/submit.json"
grep -q '"id":"job-1"' "$DIR/submit.json"
for _ in $(seq 1 300); do
  "$DPMD" request GET "http://$ADDR/v1/jobs/job-1" > "$DIR/job-status.json" || true
  grep -q '"state":"done"' "$DIR/job-status.json" && break
  sleep 0.1
done
grep -q '"state":"done"' "$DIR/job-status.json"
grep -q '"potential":"lennard-jones"' "$DIR/job-status.json"

printf '{"cell": [20,12,12], "positions": [[1,5,5],[3,5,5],[5,5,5]]}' \
  > "$DIR/eval.json"
"$DPMD" request POST "http://$ADDR/v1/eval" --body "$DIR/eval.json" \
  | grep -q '"energy":'
"$DPMD" request GET "http://$ADDR/metrics" > "$DIR/serve-metrics.json"
grep -q 'serve.http.latency_us' "$DIR/serve-metrics.json"
grep -q '"p95":' "$DIR/serve-metrics.json"
grep -q '"done":1' "$DIR/serve-metrics.json"
grep -q '"ensemble":' "$DIR/serve-metrics.json"

# Prometheus scrape of the same daemon: must pass the strict parser and
# expose the pre-registered ensemble counters and roofline gauges.
"$DPMD" request GET "http://$ADDR/metrics?format=prometheus" \
  > "$DIR/serve-prom.txt"
"$DPMD" promcheck "$DIR/serve-prom.txt"
grep -q 'dpmd_replica_exchange_attempts' "$DIR/serve-prom.txt"
grep -q 'dpmd_roofline_achieved_gflops{phase="compute"}' "$DIR/serve-prom.txt"

"$DPMD" request POST "http://$ADDR/v1/admin/shutdown" | grep -q draining
wait $SERVE_PID
echo "tier1: serve daemon ran a job and an eval, then drained cleanly"

# Bad serve flags must exit with the usage code, not hang or panic.
set +e
"$DPMD" serve --bogus-flag 2> /dev/null
code=$?
set -e
test "$code" -eq 2
echo "tier1: serve flag errors exit with typed code 2"
